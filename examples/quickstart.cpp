// Quickstart: build a tiny database, then let the unified engine plan,
// explain, and stream the query's results in ranking order. Compare
// with the hand-wired flow this replaces: pick an algorithm, check
// acyclicity, wire the T-DP yourself -- Engine::Execute does all three.
//
//   cmake --build build && ./build/quickstart
#include <cstdio>

#include "src/data/database.h"
#include "src/engine/engine.h"
#include "src/query/cq.h"

using namespace topkjoin;

int main() {
  // A 3-hop "follows" chain: who can reach whom in exactly three hops,
  // ranked by total path weight (smaller = closer relationship).
  Database db;
  Relation follows("Follows", {"src", "dst"});
  follows.AddTuple({/*alice*/ 1, /*bob*/ 2}, 0.3);
  follows.AddTuple({1, /*carol*/ 3}, 0.9);
  follows.AddTuple({2, 3}, 0.2);
  follows.AddTuple({3, /*dave*/ 4}, 0.4);
  follows.AddTuple({2, 4}, 1.5);
  follows.AddTuple({4, /*erin*/ 5}, 0.1);
  const RelationId f = db.Add(std::move(follows));

  // Q(x0,x1,x2,x3) :- Follows(x0,x1), Follows(x1,x2), Follows(x2,x3).
  ConjunctiveQuery q;
  q.AddAtom(f, {0, 1});
  q.AddAtom(f, {1, 2});
  q.AddAtom(f, {2, 3});

  Engine engine;
  std::printf("query: %s\n", q.DebugString(db).c_str());

  // Execute: one call from (db, query, ranking) to a ranked stream.
  // The chosen plan rides along, so EXPLAIN output is free (use
  // Engine::Explain to plan without executing).
  auto result = engine.Execute(db, q, {CostModelKind::kSum}, {});
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().message().c_str());
    return 1;
  }
  std::printf("\n%s\n", result.value().plan.DebugString().c_str());
  std::printf("3-hop chains, lightest first:\n");
  int rank = 0;
  while (auto r = result.value().stream->Next()) {
    std::printf("  #%d  %lld -> %lld -> %lld -> %lld   weight %.2f\n",
                ++rank, static_cast<long long>(r->assignment[0]),
                static_cast<long long>(r->assignment[1]),
                static_cast<long long>(r->assignment[2]),
                static_cast<long long>(r->assignment[3]), r->cost);
  }

  // Serving-style access: a budgeted cursor, fetched in slices, resumes
  // mid-enumeration without dropping or repeating results.
  ExecutionOptions opts;
  opts.k = 3;
  auto id = engine.OpenCursor(db, q, {}, opts);
  if (!id.ok()) {
    std::printf("error: %s\n", id.status().message().c_str());
    return 1;
  }
  Cursor* cursor = engine.cursor(id.value());
  std::printf("\ncursor, top-3 in slices of 2:\n");
  while (!cursor->Done()) {
    for (const RankedResult& r : cursor->Fetch(2)) {
      std::printf("  weight %.2f\n", r.cost);
    }
    std::printf("  -- slice done: emitted %zu so far, state %s\n",
                cursor->results_emitted(), CursorStateName(cursor->state()));
  }
  engine.CloseCursor(id.value());
  return 0;
}
