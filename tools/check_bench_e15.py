#!/usr/bin/env python3
"""Regression guard over BENCH_e15.json (bench_e15_artifact_cache).

Gates the artifact-cache claim: a warm OpenCursor must skip
preprocessing entirely.

  * cold/warm latency ratio >= 5x on the preprocessing-heavy path-4
    workload (in practice it is orders of magnitude; 5x keeps the gate
    robust on noisy CI runners).
  * fan-out build pin: N simultaneously open cursors over one query
    must have triggered exactly ONE preprocessing build.
  * the fanned-out cursors must all have produced results and agreed
    on the rank-0 cost (independent per-cursor enumeration state over
    one shared artifact).

Usage: check_bench_e15.py path/to/BENCH_e15.json
"""
import json
import sys

MIN_COLD_WARM_RATIO = 5.0


def fail(msg: str) -> None:
    print(f"BENCH_e15 regression: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_bench_e15.py BENCH_e15.json")
    with open(sys.argv[1]) as f:
        data = json.load(f)

    ratio = data.get("cold_warm_ratio")
    if ratio is None:
        fail("cold_warm_ratio missing from JSON")
    if ratio < MIN_COLD_WARM_RATIO:
        fail(
            f"cold/warm OpenCursor ratio {ratio:.1f}x < "
            f"{MIN_COLD_WARM_RATIO}x (cold={data.get('cold_open_ns')}ns "
            f"warm={data.get('warm_open_ns')}ns): warm opens are paying "
            f"for preprocessing again"
        )

    builds = data.get("fanout_artifact_builds")
    cursors = data.get("fanout_cursors", 0)
    if builds is None:
        fail("fanout_artifact_builds missing from JSON")
    if builds != 1:
        fail(
            f"{cursors} fanned-out cursors triggered {builds} preprocessing "
            f"build(s) (want exactly 1 shared artifact)"
        )

    results = data.get("fanout_results", 0)
    if results <= 0:
        fail("fanned-out cursors produced no results")
    if data.get("fanout_consistent") is not True:
        fail("fanned-out cursors disagreed on the rank-0 cost")

    print(
        f"BENCH_e15 guard: cold/warm {ratio:.1f}x >= {MIN_COLD_WARM_RATIO}x, "
        f"{cursors} cursors shared 1 build ({results} results), "
        f"all checks passed"
    )


if __name__ == "__main__":
    main()
