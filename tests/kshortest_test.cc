// Tests for kshortest/: REA and Lawler k-shortest paths on DAGs,
// differential against exhaustive enumeration, plus the structural
// correspondence with any-k on serial path queries.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/anyk/anyk.h"
#include "src/data/generators.h"
#include "src/kshortest/dag.h"
#include "src/kshortest/kshortest.h"
#include "src/util/rng.h"

namespace topkjoin {
namespace {

// Random layered DAG: `layers` layers of `width` nodes, edges between
// consecutive layers with probability `p`. Source = extra node 0 wired
// to layer 0, target = extra node wired from the last layer.
Dag RandomLayeredDag(size_t layers, size_t width, double p, uint64_t seed,
                     size_t* source, size_t* target) {
  Rng rng(seed);
  const size_t n = layers * width + 2;
  Dag dag(n);
  *source = n - 2;
  *target = n - 1;
  auto node = [&](size_t layer, size_t i) { return layer * width + i; };
  for (size_t i = 0; i < width; ++i) {
    dag.AddEdge(*source, node(0, i), rng.NextDouble());
    dag.AddEdge(node(layers - 1, i), *target, rng.NextDouble());
  }
  for (size_t l = 0; l + 1 < layers; ++l) {
    for (size_t i = 0; i < width; ++i) {
      for (size_t j = 0; j < width; ++j) {
        if (rng.NextDouble() < p) {
          dag.AddEdge(node(l, i), node(l + 1, j), rng.NextDouble());
        }
      }
    }
  }
  return dag;
}

TEST(DagTest, TopologicalOrderRespectsEdges) {
  Dag dag(4);
  dag.AddEdge(2, 0, 1.0);
  dag.AddEdge(0, 1, 1.0);
  dag.AddEdge(1, 3, 1.0);
  const auto order = dag.TopologicalOrder();
  std::vector<size_t> pos(4);
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[2], pos[0]);
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[1], pos[3]);
}

TEST(KShortestTest, TinyHandComputedExample) {
  //      0 --1.0--> 1 --1.0--> 3
  //       \--0.5--> 2 --2.0--/
  Dag dag(4);
  dag.AddEdge(0, 1, 1.0);
  dag.AddEdge(0, 2, 0.5);
  dag.AddEdge(1, 3, 1.0);
  dag.AddEdge(2, 3, 2.0);
  for (auto* fn : {&KShortestPathsRea, &KShortestPathsLawler}) {
    const auto paths = (*fn)(dag, 0, 3, 10);
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_DOUBLE_EQ(paths[0].weight, 2.0);
    EXPECT_EQ(paths[0].nodes, (std::vector<size_t>{0, 1, 3}));
    EXPECT_DOUBLE_EQ(paths[1].weight, 2.5);
    EXPECT_EQ(paths[1].nodes, (std::vector<size_t>{0, 2, 3}));
  }
}

TEST(KShortestTest, NoPathYieldsEmpty) {
  Dag dag(3);
  dag.AddEdge(0, 1, 1.0);  // node 2 unreachable
  EXPECT_TRUE(KShortestPathsRea(dag, 0, 2, 5).empty());
  EXPECT_TRUE(KShortestPathsLawler(dag, 0, 2, 5).empty());
}

TEST(KShortestTest, SourceEqualsTarget) {
  Dag dag(2);
  dag.AddEdge(0, 1, 1.0);
  const auto rea = KShortestPathsRea(dag, 0, 0, 3);
  ASSERT_EQ(rea.size(), 1u);
  EXPECT_EQ(rea[0].nodes, (std::vector<size_t>{0}));
  EXPECT_DOUBLE_EQ(rea[0].weight, 0.0);
  const auto lawler = KShortestPathsLawler(dag, 0, 0, 3);
  ASSERT_EQ(lawler.size(), 1u);
  EXPECT_DOUBLE_EQ(lawler[0].weight, 0.0);
}

class KShortestSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KShortestSweep, BothAlgorithmsMatchExhaustiveEnumeration) {
  size_t source = 0, target = 0;
  const Dag dag =
      RandomLayeredDag(4, 4, 0.6, GetParam(), &source, &target);
  const auto all = AllPathsSorted(dag, source, target);
  const size_t k = all.size() + 3;  // ask for more than exists
  const auto rea = KShortestPathsRea(dag, source, target, k);
  const auto lawler = KShortestPathsLawler(dag, source, target, k);
  ASSERT_EQ(rea.size(), all.size());
  ASSERT_EQ(lawler.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_NEAR(rea[i].weight, all[i].weight, 1e-9) << "REA rank " << i;
    EXPECT_NEAR(lawler[i].weight, all[i].weight, 1e-9)
        << "Lawler rank " << i;
    // Paths themselves must be valid s-t walks along DAG arcs.
    EXPECT_EQ(rea[i].nodes.front(), source);
    EXPECT_EQ(rea[i].nodes.back(), target);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KShortestSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(KShortestTest, LawlerPathsAreDistinct) {
  size_t source = 0, target = 0;
  const Dag dag = RandomLayeredDag(3, 5, 0.7, 99, &source, &target);
  const auto paths = KShortestPathsLawler(dag, source, target, 1000);
  for (size_t i = 0; i < paths.size(); ++i) {
    for (size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i].nodes, paths[j].nodes)
          << "duplicate path at ranks " << i << "," << j;
    }
  }
}

// The correspondence the tutorial highlights: an l-path join query over
// layered relations IS a k-shortest-path instance. Costs from any-k must
// match REA on the equivalent DAG.
TEST(KShortestTest, AnyKOnPathQueryMatchesReaOnEquivalentDag) {
  const size_t domain = 12;
  const size_t stages = 3;
  Rng rng(123);
  Database db;
  ConjunctiveQuery q;
  std::vector<Relation> rels;
  for (size_t i = 0; i < stages; ++i) {
    const RelationId id =
        db.Add(LayeredStageRelation("R" + std::to_string(i), domain, 3, rng));
    q.AddAtom(id, {static_cast<VarId>(i), static_cast<VarId>(i + 1)});
  }
  // Equivalent DAG: nodes (stage, value) plus source/target; tuple
  // (a, b) of stage i becomes an arc (i,a) -> (i+1,b) of that weight.
  const size_t layer_nodes = (stages + 1) * domain;
  Dag dag(layer_nodes + 2);
  const size_t source = layer_nodes, target = layer_nodes + 1;
  auto node = [&](size_t stage, Value v) {
    return stage * domain + static_cast<size_t>(v);
  };
  for (size_t i = 0; i < stages; ++i) {
    const Relation& rel = db.relation(q.atom(i).relation);
    for (RowId r = 0; r < rel.NumTuples(); ++r) {
      dag.AddEdge(node(i, rel.At(r, 0)), node(i + 1, rel.At(r, 1)),
                  rel.TupleWeight(r));
    }
  }
  for (Value v = 0; v < static_cast<Value>(domain); ++v) {
    dag.AddEdge(source, node(0, v), 0.0);
    dag.AddEdge(node(stages, v), target, 0.0);
  }
  const auto paths = KShortestPathsRea(dag, source, target, 50);
  auto anyk = MakeAnyK(db, q, AnyKAlgorithm::kRec);
  for (size_t i = 0; i < paths.size() && i < 50; ++i) {
    const auto r = anyk->Next();
    ASSERT_TRUE(r.has_value()) << "any-k ended early at " << i;
    EXPECT_NEAR(r->cost, paths[i].weight, 1e-9) << "rank " << i;
  }
}

}  // namespace
}  // namespace topkjoin
