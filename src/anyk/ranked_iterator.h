// The public any-k iterator interface: results in ranking order, one at
// a time, without knowing k in advance ("anytime top-k", Section 4).
#ifndef TOPKJOIN_ANYK_RANKED_ITERATOR_H_
#define TOPKJOIN_ANYK_RANKED_ITERATOR_H_

#include <optional>
#include <vector>

#include "src/util/common.h"

namespace topkjoin {

/// One ranked join result: the full variable assignment (indexed by
/// VarId) and its cost rendered as a double (exact for the SUM/MAX/PROD
/// models; the LEX model exposes its primary component).
struct RankedResult {
  std::vector<Value> assignment;
  double cost = 0.0;
};

/// Pull-based ranked enumeration. Next() returns results in
/// non-decreasing cost order; nullopt when exhausted.
class RankedIterator {
 public:
  virtual ~RankedIterator() = default;
  virtual std::optional<RankedResult> Next() = 0;

  /// Monotone counter of RAM-model work units (heap extractions and
  /// priority-queue pushes) spent so far, preprocessing excluded. The
  /// delta between consecutive Next() calls is the per-result delay the
  /// any-k guarantee bounds -- tests assert it never spikes to
  /// O(output). Pipelines without instrumentation report 0.
  virtual int64_t WorkUnits() const { return 0; }
};

}  // namespace topkjoin

#endif  // TOPKJOIN_ANYK_RANKED_ITERATOR_H_
