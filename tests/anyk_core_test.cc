// Pins for the rebuilt any-k enumeration core (tdp.h + anyk_part.h):
//
//   * zero per-tuple heap allocations during T-DP construction -- the
//     flat group-key interning and columnar group/child-group arenas
//     replaced per-tuple map nodes and per-tuple child-group vectors
//     (counted with a global operator-new override: doubling the input
//     must not grow the allocation count anywhere near linearly);
//   * zero candidate copies per Next() -- the pooled prefix-sharing
//     nodes and the intrusive index heap replaced the fat Candidate
//     objects the legacy engine deep-copied out of
//     priority_queue::top() (counted with a copy-counting cost type;
//     the retained legacy engine trips the same counter, proving the
//     pin is not vacuous);
//   * Take2 frontier discipline -- at most 2 pushes per popped result
//     (vs ell for the Lawler expansion), never more than legacy, with
//     identical ranked output;
//   * a smaller peak candidate footprint than legacy on the same
//     workload.
#include <atomic>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "src/anyk/anyk_part.h"
#include "src/anyk/anyk_part_legacy.h"
#include "src/anyk/batch.h"
#include "src/anyk/tdp.h"
#include "src/data/generators.h"
#include "src/util/rng.h"

// ---------------------------------------------------------------------
// Global allocation counter. Overriding operator new in this test
// binary is the only portable way to observe heap allocations; the
// counter is only read via deltas around single-threaded code, so other
// allocations cannot race in between.

namespace {
std::atomic<size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace topkjoin {
namespace {

struct TestInstance {
  Database db;
  ConjunctiveQuery query;
};

TestInstance MakePathInstance(size_t len, size_t tuples, Value domain,
                              uint64_t seed) {
  TestInstance t;
  Rng rng(seed);
  for (size_t i = 0; i < len; ++i) {
    const RelationId id = t.db.Add(
        UniformBinaryRelation("R" + std::to_string(i), tuples, domain, rng));
    t.query.AddAtom(id, {static_cast<VarId>(i), static_cast<VarId>(i + 1)});
  }
  return t;
}

// ---------------------------------------------------------------- allocs

size_t AllocationsDuringTdpConstruction(const TestInstance& t,
                                        SortMode mode) {
  const size_t before = g_allocations.load(std::memory_order_relaxed);
  Tdp<SumCost> tdp(t.db, t.query, mode, nullptr);
  const size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_TRUE(tdp.HasResults());
  return after - before;
}

// Doubling the tuple count at a fixed join-key domain must leave the
// construction allocation count essentially unchanged: everything that
// scales with n lives in flat arenas (group rows, child groups, hashes,
// best[]) whose geometric growth contributes O(log n) allocations, and
// the interning index allocates per distinct key, not per tuple. A
// per-tuple allocation anywhere in BuildGroups/ComputeBest would show
// up as a delta >= n.
TEST(TdpAllocationTest, ConstructionDoesNoPerTupleAllocations) {
  const size_t small_n = 1200, big_n = 2400;
  const Value domain = 30;
  for (const SortMode mode :
       {SortMode::kEager, SortMode::kLazy, SortMode::kQuickselect}) {
    TestInstance small = MakePathInstance(3, small_n, domain, 7);
    TestInstance big = MakePathInstance(3, big_n, domain, 7);
    const size_t small_allocs = AllocationsDuringTdpConstruction(small, mode);
    const size_t big_allocs = AllocationsDuringTdpConstruction(big, mode);
    EXPECT_LT(big_allocs, small_allocs + (big_n - small_n) / 8)
        << "per-tuple allocation regression (mode "
        << static_cast<int>(mode) << "): " << small_allocs << " -> "
        << big_allocs;
  }
}

// ------------------------------------------------------------ zero copy

/// A double that counts copies (moves are free and noexcept, so vector
/// growth in the pools stays move-only). Candidate copies necessarily
/// copy the candidate's cost, so a zero count here pins "zero candidate
/// copies per Next()".
struct CountedDouble {
  double v = 0.0;
  static std::atomic<int64_t> copies;

  CountedDouble() = default;
  explicit CountedDouble(double x) : v(x) {}
  CountedDouble(const CountedDouble& o) : v(o.v) {
    copies.fetch_add(1, std::memory_order_relaxed);
  }
  CountedDouble& operator=(const CountedDouble& o) {
    v = o.v;
    copies.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  CountedDouble(CountedDouble&& o) noexcept : v(o.v) {}
  CountedDouble& operator=(CountedDouble&& o) noexcept {
    v = o.v;
    return *this;
  }
};
std::atomic<int64_t> CountedDouble::copies{0};

struct CountingCost {
  using CostT = CountedDouble;
  static constexpr const char* kName = "counting-sum";
  static CostT Identity() { return CountedDouble(0.0); }
  static CostT FromWeight(Weight w) { return CountedDouble(w); }
  static CostT FromWeights(std::span<const Weight> ws) {
    double c = 0.0;
    for (Weight w : ws) c += w;
    return CountedDouble(c);
  }
  static CostT Combine(const CostT& a, const CostT& b) {
    return CountedDouble(a.v + b.v);
  }
  static bool Less(const CostT& a, const CostT& b) { return a.v < b.v; }
  static double ToDouble(const CostT& c) { return c.v; }
  static std::vector<double> Components(const CostT&) { return {}; }
};

template <typename Engine>
int64_t CopiesPerFullDrain(Engine* engine, size_t* results) {
  CountedDouble::copies.store(0, std::memory_order_relaxed);
  *results = 0;
  while (engine->Next().has_value()) ++(*results);
  return CountedDouble::copies.load(std::memory_order_relaxed);
}

TEST(ZeroCopyTest, PooledPartCopiesNoCandidatesPerNext) {
  TestInstance t = MakePathInstance(3, 60, 5, 3);
  {
    Tdp<CountingCost> tdp(t.db, t.query, SortMode::kLazy, nullptr);
    AnyKPart<CountingCost, PartStrategy::kLawler> lawler(&tdp);
    size_t results = 0;
    EXPECT_EQ(CopiesPerFullDrain(&lawler, &results), 0) << "lawler";
    EXPECT_GT(results, 100u);
  }
  {
    Tdp<CountingCost> tdp(t.db, t.query, SortMode::kLazy, nullptr);
    AnyKPart<CountingCost, PartStrategy::kTake2> take2(&tdp);
    size_t results = 0;
    EXPECT_EQ(CopiesPerFullDrain(&take2, &results), 0) << "take2";
    EXPECT_GT(results, 100u);
  }
  {
    Tdp<CountingCost> tdp(t.db, t.query, SortMode::kQuickselect, nullptr);
    AnyKPart<CountingCost, PartStrategy::kTake2> memoized(&tdp);
    size_t results = 0;
    EXPECT_EQ(CopiesPerFullDrain(&memoized, &results), 0) << "memoized";
    EXPECT_GT(results, 100u);
  }
}

// The counter is not vacuous: the legacy engine's top() deep copy (and
// its per-successor candidate construction) trips it at least once per
// result.
TEST(ZeroCopyTest, LegacyPartCopiesCandidates) {
  TestInstance t = MakePathInstance(3, 60, 5, 3);
  Tdp<CountingCost> tdp(t.db, t.query, SortMode::kLazy, nullptr);
  LegacyAnyKPart<CountingCost> legacy(&tdp);
  size_t results = 0;
  const int64_t copies = CopiesPerFullDrain(&legacy, &results);
  EXPECT_GE(copies, static_cast<int64_t>(results));
}

// -------------------------------------------------- take2 push discipline

TEST(Take2Test, AtMostTwoPushesPerResultAndNeverMoreThanLegacy) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    TestInstance t = MakePathInstance(4, 40, 4, seed);

    Tdp<SumCost> tdp_take2(t.db, t.query, SortMode::kLazy, nullptr);
    AnyKPart<SumCost, PartStrategy::kTake2> take2(&tdp_take2);
    std::vector<double> take2_costs;
    while (auto r = take2.Next()) take2_costs.push_back(r->cost);

    Tdp<SumCost> tdp_legacy(t.db, t.query, SortMode::kLazy, nullptr);
    LegacyAnyKPart<SumCost> legacy(&tdp_legacy);
    std::vector<double> legacy_costs;
    while (auto r = legacy.Next()) legacy_costs.push_back(r->cost);

    ASSERT_EQ(take2_costs.size(), legacy_costs.size()) << "seed " << seed;
    for (size_t i = 0; i < take2_costs.size(); ++i) {
      EXPECT_NEAR(take2_costs[i], legacy_costs[i], 1e-9)
          << "seed " << seed << " rank " << i;
    }
    if (take2_costs.empty()) continue;
    // <= 2 pushes per popped result (+1 for the seed).
    EXPECT_LE(take2.pq_pushes(),
              2 * static_cast<int64_t>(take2_costs.size()) + 1)
        << "seed " << seed;
    EXPECT_LE(take2.pq_pushes(), legacy.pq_pushes()) << "seed " << seed;
  }
}

// Peak candidate memory in the top-k regime (k << output -- the regime
// ranked enumeration exists for): the pooled nodes are a fraction of
// the legacy fat candidates.
TEST(Take2Test, TopKPeakCandidateMemoryBeatsLegacy) {
  // The bench_e13 path workload shape at a k large enough that the
  // asymptotic footprints dominate fixed overheads (radix buckets,
  // container rounding): the legacy frontier accumulates fat
  // heap-allocated candidates while the pooled engine keeps 12-byte
  // nodes and recycled deviation slabs.
  TestInstance t = MakePathInstance(4, 1200, 100, 41);
  const size_t k = 200000;

  Tdp<SumCost> tdp_take2(t.db, t.query, SortMode::kLazy, nullptr);
  AnyKPart<SumCost, PartStrategy::kTake2> take2(&tdp_take2);
  Tdp<SumCost> tdp_legacy(t.db, t.query, SortMode::kLazy, nullptr);
  LegacyAnyKPart<SumCost> legacy(&tdp_legacy);
  for (size_t i = 0; i < k; ++i) {
    ASSERT_TRUE(take2.Next().has_value());
    ASSERT_TRUE(legacy.Next().has_value());
  }
  EXPECT_LT(take2.peak_candidate_bytes(), legacy.peak_candidate_bytes());
}

// The full-drain regression the refcounted node recycling fixes: the
// pool used to retain every node ever pushed as a prefix anchor, so a
// full drain grew the pool to Theta(total pushes) even though most
// chains were dead (their deviation lists exhausted, no frontier entry
// pointing at any suffix). With per-node refcounts the dead chains are
// freed back to an intrusive freelist and recycled, so the pool's
// total slot count stays a small fraction of the result count -- and
// the peak footprint no longer flips above legacy's on a full drain.
TEST(Take2Test, FullDrainRecyclesDeadCandidateChains) {
  TestInstance t = MakePathInstance(4, 40, 3, 2);

  Tdp<SumCost> tdp_take2(t.db, t.query, SortMode::kLazy, nullptr);
  AnyKPart<SumCost, PartStrategy::kTake2> take2(&tdp_take2);
  size_t results = 0;
  while (take2.Next().has_value()) ++results;
  ASSERT_GT(results, 1000u);  // a real drain, not a toy

  Tdp<SumCost> tdp_legacy(t.db, t.query, SortMode::kLazy, nullptr);
  LegacyAnyKPart<SumCost> legacy(&tdp_legacy);
  size_t legacy_results = 0;
  while (legacy.Next().has_value()) ++legacy_results;
  ASSERT_EQ(results, legacy_results);

  // Without recycling the pool holds one node per push -- about one per
  // result on this drain; with it, live slots track the frontier + live
  // prefix chains only (empirically under 10% of the result count; the
  // /2 bound leaves headroom for workload shifts).
  EXPECT_LT(take2.pool_nodes(), results / 2)
      << "pool grew with the drain: dead chains are not being recycled";
  // And the WHOLE peak footprint (pool + costs + refcounts + deviation
  // slab + frontier) now stays below what the unrecycled design paid
  // for its node slab alone: 24 bytes per push (12-byte Node + 8-byte
  // cost + 4-byte refcount, one slot per push, never freed).
  EXPECT_LT(take2.peak_candidate_bytes(),
            static_cast<size_t>(take2.pq_pushes()) * 24)
      << "full-drain footprint regressed to unrecycled-pool scale";
}

// FP-regression pin for the monotone radix frontier: with tuple
// weights drawn from a tiny set, many solution costs collide up to
// rounding, and EvaluateDeviation's (prefix (+) best) (+) tail
// association can compute a deviation's double an ulp BELOW the popped
// minimum even though the exact value is >= it. The frontier clamps
// such keys to the current minimum; without the clamp this instance
// aborts the radix invariant in debug builds and emits ulp-scale
// inversions in release builds.
TEST(Take2Test, DenseCostTiesStayOrderedAndComplete) {
  Database db;
  ConjunctiveQuery q;
  Rng rng(3);
  for (int i = 0; i < 4; ++i) {
    Relation rel = Relation::WithArity("R" + std::to_string(i), 2);
    for (int t = 0; t < 120; ++t) {
      const double w = rng.NextBounded(2) == 0 ? 0.1 : 0.3;
      rel.AddTuple({static_cast<Value>(rng.NextBounded(6)),
                    static_cast<Value>(rng.NextBounded(6))},
                   w);
    }
    const RelationId id = db.Add(std::move(rel));
    q.AddAtom(id, {static_cast<VarId>(i), static_cast<VarId>(i + 1)});
  }

  Tdp<SumCost> tdp_eager(db, q, SortMode::kEager, nullptr);
  BatchSorted<SumCost> batch(&tdp_eager);
  size_t want = 0;
  while (batch.Next().has_value()) ++want;
  ASSERT_GT(want, 10000u);

  for (const PartStrategy strategy :
       {PartStrategy::kLawler, PartStrategy::kTake2}) {
    Tdp<SumCost> tdp(db, q, SortMode::kLazy, nullptr);
    size_t got = 0;
    double last = -1.0;
    const auto drain = [&](auto& engine) {
      while (auto r = engine.Next()) {
        EXPECT_GE(r->cost, last - 1e-9) << "inversion at rank " << got;
        last = r->cost;
        ++got;
      }
    };
    if (strategy == PartStrategy::kLawler) {
      AnyKPart<SumCost, PartStrategy::kLawler> e(&tdp);
      drain(e);
    } else {
      AnyKPart<SumCost, PartStrategy::kTake2> e(&tdp);
      drain(e);
    }
    EXPECT_EQ(got, want);
  }
}

// Memoized (Take2 over incremental-quickselect lists) emits the exact
// stream of the eagerly sorted baseline.
TEST(Take2Test, MemoizedMatchesEagerStream) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    TestInstance t = MakePathInstance(3, 50, 4, seed + 11);

    Tdp<SumCost> tdp_eager(t.db, t.query, SortMode::kEager, nullptr);
    BatchSorted<SumCost> batch(&tdp_eager);
    std::vector<double> want;
    while (auto r = batch.Next()) want.push_back(r->cost);

    Tdp<SumCost> tdp_memo(t.db, t.query, SortMode::kQuickselect, nullptr);
    AnyKPart<SumCost, PartStrategy::kTake2> memoized(&tdp_memo);
    std::vector<double> got;
    while (auto r = memoized.Next()) got.push_back(r->cost);

    ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], want[i], 1e-9) << "seed " << seed << " rank " << i;
    }
  }
}

}  // namespace
}  // namespace topkjoin
