#include "src/engine/cursor.h"

#include <algorithm>
#include <utility>

#include "src/util/common.h"

namespace topkjoin {

const char* CursorStateName(CursorState state) {
  switch (state) {
    case CursorState::kActive:
      return "active";
    case CursorState::kExhausted:
      return "exhausted";
    case CursorState::kResultBudgetHit:
      return "result-budget-hit";
    case CursorState::kWorkBudgetHit:
      return "work-budget-hit";
  }
  return "unknown";
}

Cursor::Cursor(std::unique_ptr<RankedIterator> pipeline, CursorOptions options)
    : pipeline_(std::move(pipeline)), options_(options) {
  TOPKJOIN_CHECK(pipeline_ != nullptr);
}

std::optional<RankedResult> Cursor::Next() {
  if (state() != CursorState::kActive) return std::nullopt;
  if (options_.result_budget.has_value() &&
      results_emitted() >= *options_.result_budget) {
    state_.store(CursorState::kResultBudgetHit, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (options_.work_budget.has_value() &&
      work_used() >= *options_.work_budget) {
    state_.store(CursorState::kWorkBudgetHit, std::memory_order_relaxed);
    return std::nullopt;
  }
  work_used_.fetch_add(1, std::memory_order_relaxed);
  auto result = pipeline_->Next();
  if (!result.has_value()) {
    state_.store(CursorState::kExhausted, std::memory_order_relaxed);
    return std::nullopt;
  }
  results_emitted_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::vector<RankedResult> Cursor::Fetch(size_t max_results) {
  std::vector<RankedResult> slice;
  if (max_results == 0) return slice;
  // max_results is caller-controlled and may be a "drain the rest"
  // sentinel like SIZE_MAX; cap the reservation.
  slice.reserve(std::min<size_t>(max_results, 1024));
  while (slice.size() < max_results) {
    auto result = Next();
    if (!result.has_value()) break;
    slice.push_back(std::move(*result));
  }
  return slice;
}

void Cursor::ExtendBudgets(size_t extra_results, size_t extra_work) {
  // Saturating: a SIZE_MAX-ish "effectively unlimited" grant must not
  // wrap the budget around to a tiny value.
  const auto extend = [](std::optional<size_t>& budget, size_t extra) {
    if (!budget.has_value()) return;
    *budget = (static_cast<size_t>(-1) - *budget < extra)
                  ? static_cast<size_t>(-1)
                  : *budget + extra;
  };
  extend(options_.result_budget, extra_results);
  extend(options_.work_budget, extra_work);
  // An exhausted stream stays exhausted; a budget stop resumes only when
  // the grant leaves headroom (ExtendBudgets(0, 0) must be a no-op).
  const CursorState s = state();
  if (s == CursorState::kResultBudgetHit &&
      (!options_.result_budget.has_value() ||
       results_emitted() < *options_.result_budget)) {
    state_.store(CursorState::kActive, std::memory_order_relaxed);
  } else if (s == CursorState::kWorkBudgetHit &&
             (!options_.work_budget.has_value() ||
              work_used() < *options_.work_budget)) {
    state_.store(CursorState::kActive, std::memory_order_relaxed);
  }
}

}  // namespace topkjoin
