#include "src/engine/cursor.h"

#include <algorithm>
#include <utility>

#include "src/util/common.h"

namespace topkjoin {

const char* CursorStateName(CursorState state) {
  switch (state) {
    case CursorState::kActive:
      return "active";
    case CursorState::kExhausted:
      return "exhausted";
    case CursorState::kResultBudgetHit:
      return "result-budget-hit";
    case CursorState::kWorkBudgetHit:
      return "work-budget-hit";
  }
  return "unknown";
}

Cursor::Cursor(std::unique_ptr<RankedIterator> pipeline, CursorOptions options)
    : pipeline_(std::move(pipeline)), options_(options) {
  TOPKJOIN_CHECK(pipeline_ != nullptr);
}

std::optional<RankedResult> Cursor::Next() {
  if (state_ != CursorState::kActive) return std::nullopt;
  if (options_.result_budget.has_value() &&
      results_emitted_ >= *options_.result_budget) {
    state_ = CursorState::kResultBudgetHit;
    return std::nullopt;
  }
  if (options_.work_budget.has_value() && work_used_ >= *options_.work_budget) {
    state_ = CursorState::kWorkBudgetHit;
    return std::nullopt;
  }
  ++work_used_;
  auto result = pipeline_->Next();
  if (!result.has_value()) {
    state_ = CursorState::kExhausted;
    return std::nullopt;
  }
  ++results_emitted_;
  return result;
}

std::vector<RankedResult> Cursor::Fetch(size_t max_results) {
  std::vector<RankedResult> slice;
  // max_results is caller-controlled and may be a "drain the rest"
  // sentinel like SIZE_MAX; cap the reservation.
  slice.reserve(std::min<size_t>(max_results, 1024));
  while (slice.size() < max_results) {
    auto result = Next();
    if (!result.has_value()) break;
    slice.push_back(std::move(*result));
  }
  return slice;
}

void Cursor::ExtendBudgets(size_t extra_results, size_t extra_work) {
  if (options_.result_budget.has_value()) {
    *options_.result_budget += extra_results;
  }
  if (options_.work_budget.has_value()) {
    *options_.work_budget += extra_work;
  }
  // An exhausted stream stays exhausted; budget stops resume.
  if (state_ == CursorState::kResultBudgetHit ||
      state_ == CursorState::kWorkBudgetHit) {
    state_ = CursorState::kActive;
  }
}

}  // namespace topkjoin
