// Small keyed LRU cache of CardinalityEstimators, one entry per
// database, keyed on (database identity, snapshot epoch).
//
// Building an estimator samples every relation (O(total tuples)), so
// bare Engine::Execute/Explain calls that rebuilt one per query paid
// the sampling cost over and over -- and double-counted it in the
// planner metrics. Both Engine and ServingEngine share this cache. It
// used to be a single entry, which meant two databases served
// alternately thrashed a full estimator rebuild on every request; now
// each database gets its own slot under a small LRU capacity,
// consistent with the plan/artifact cache identity rules (raw Database
// pointer + epoch-seeded version, so a freed database's slot can never
// be replayed by an unrelated object reusing the address).
//
// Live updates: every cached estimator is built over -- and pins -- a
// DatabaseSnapshot, so it stays valid however the live database
// mutates. When a lookup finds a stale entry whose gap is covered by
// the delta log (pure appends), the estimator is *patched*: copied and
// its reservoir samples extended over the appended rows
// (CardinalityEstimator::RetargetAndExtend, O(appended)), instead of
// resampling everything. Barriers (Add / mutable_relation) fall back
// to a full rebuild.
//
// Thread-safety: all methods are safe to call concurrently. Building
// happens under the lock, so concurrent first-misses of the same
// database serialize onto one sampling pass instead of racing
// duplicates.
#ifndef TOPKJOIN_STATS_ESTIMATOR_CACHE_H_
#define TOPKJOIN_STATS_ESTIMATOR_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>

#include "src/data/database.h"
#include "src/stats/cardinality_estimator.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace topkjoin {

class EstimatorCache {
 public:
  explicit EstimatorCache(size_t capacity = 4) : capacity_(capacity) {}

  /// The estimator for `db` at its current snapshot; builds (or
  /// patches) one when the cached entry is missing or stale. The
  /// returned shared_ptr keeps the snapshot it was built over alive,
  /// so it stays valid after the cache moves on AND after the live
  /// database mutates.
  std::shared_ptr<const CardinalityEstimator> For(const Database& db)
      EXCLUDES(mu_);

  /// Same, for a caller that already pinned a snapshot of `db` (the
  /// serving layer pins exactly one snapshot per OpenCursor and keys
  /// every cache on its epoch).
  std::shared_ptr<const CardinalityEstimator> For(
      const Database& db, std::shared_ptr<const DatabaseSnapshot> snap)
      EXCLUDES(mu_);

  /// Drops the entry if it belongs to `db` (e.g. before freeing the
  /// database).
  void Invalidate(const Database* db) EXCLUDES(mu_);

  /// Lifetime counters (also exported as stats.estimator_cache_* /
  /// stats.estimator_patches metrics; these stay available with
  /// metrics compiled out).
  size_t NumBuilds() const EXCLUDES(mu_);
  size_t NumPatches() const EXCLUDES(mu_);

 private:
  /// Keeps the snapshot alive for as long as anyone holds the
  /// estimator (entries return aliased shared_ptrs into this).
  struct Pinned {
    std::shared_ptr<const DatabaseSnapshot> snap;
    std::shared_ptr<const CardinalityEstimator> est;
  };
  struct Entry {
    const Database* db = nullptr;
    uint64_t epoch = 0;
    std::shared_ptr<const CardinalityEstimator> est;  // aliased into Pinned
  };

  static std::shared_ptr<const CardinalityEstimator> Alias(
      std::shared_ptr<const DatabaseSnapshot> snap,
      std::shared_ptr<const CardinalityEstimator> est);

  mutable Mutex mu_;
  size_t capacity_;
  std::list<Entry> entries_ GUARDED_BY(mu_);  // most recently used first
  size_t builds_ GUARDED_BY(mu_) = 0;
  size_t patches_ GUARDED_BY(mu_) = 0;
};

}  // namespace topkjoin

#endif  // TOPKJOIN_STATS_ESTIMATOR_CACHE_H_
