#include "src/util/zipf.h"

#include <algorithm>
#include <cmath>

#include "src/util/common.h"

namespace topkjoin {

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  TOPKJOIN_CHECK(n > 0);
  TOPKJOIN_CHECK(theta >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= total;
  cdf_[n - 1] = 1.0;  // guard against floating-point shortfall
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace topkjoin
