// Tests for topk/: the middleware model (FA, TA, NRA) and the rank-join
// family (HRJN plans, J*), differentially tested against brute force and
// against the batch-sorted join oracle.
#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/anyk/anyk.h"
#include "src/data/generators.h"
#include "src/join/nested_loop.h"
#include "src/topk/access_source.h"
#include "src/topk/fagin.h"
#include "src/topk/jstar.h"
#include "src/topk/nra.h"
#include "src/topk/rank_join.h"
#include "src/topk/threshold.h"
#include "src/util/rng.h"

namespace topkjoin {
namespace {

TEST(ScoredListTest, SortedDescendingAndCounted) {
  ScoredList list({{1, 0.2}, {2, 0.9}, {3, 0.5}});
  EXPECT_EQ(list.SortedAccess(0).first, 2);
  EXPECT_EQ(list.SortedAccess(1).first, 3);
  EXPECT_EQ(list.SortedAccess(2).first, 1);
  EXPECT_EQ(list.sorted_accesses(), 3);
  EXPECT_DOUBLE_EQ(*list.RandomAccess(1), 0.2);
  EXPECT_FALSE(list.RandomAccess(99).has_value());
  EXPECT_EQ(list.random_accesses(), 2);
  list.ResetCounters();
  EXPECT_EQ(list.sorted_accesses(), 0);
}

TEST(GenerateListsTest, ShapesAndDeterminism) {
  Rng rng1(5), rng2(5);
  const auto a = GenerateLists(3, 50, ListCorrelation::kIndependent, rng1);
  const auto b = GenerateLists(3, 50, ListCorrelation::kIndependent, rng2);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].size(), 50u);
  for (size_t r = 0; r < 50; ++r) {
    EXPECT_EQ(a[1].Peek(r).first, b[1].Peek(r).first);
  }
}

class MiddlewareSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(MiddlewareSweep, AllThreeAlgorithmsFindTheTopK) {
  const auto [m, num_objects, k, corr_i] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 1000 + num_objects + k));
  const auto corr = static_cast<ListCorrelation>(corr_i);
  const auto lists =
      GenerateLists(static_cast<size_t>(m), static_cast<size_t>(num_objects),
                    corr, rng);
  const auto expected = BruteForceTopK(lists, static_cast<size_t>(k));

  const auto fa = FaginTopK(lists, static_cast<size_t>(k));
  ASSERT_EQ(fa.entries.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(fa.entries[i].first, expected[i].first) << "FA rank " << i;
    EXPECT_NEAR(fa.entries[i].second, expected[i].second, 1e-9);
  }

  const auto ta = ThresholdTopK(lists, static_cast<size_t>(k));
  ASSERT_EQ(ta.entries.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(ta.entries[i].first, expected[i].first) << "TA rank " << i;
    EXPECT_NEAR(ta.entries[i].second, expected[i].second, 1e-9);
  }

  // NRA guarantees the correct SET (order may be approximate when the
  // run stops on bound domination).
  const auto nra = NraTopK(lists, static_cast<size_t>(k));
  std::set<ObjectId> nra_set, expected_set;
  for (const auto& [id, s] : nra.entries) nra_set.insert(id);
  for (const auto& [id, s] : expected) expected_set.insert(id);
  EXPECT_EQ(nra_set, expected_set);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MiddlewareSweep,
    ::testing::Values(std::make_tuple(2, 100, 5, 0),
                      std::make_tuple(3, 100, 10, 0),
                      std::make_tuple(2, 200, 1, 1),
                      std::make_tuple(3, 150, 5, 1),
                      std::make_tuple(2, 100, 5, 2),
                      std::make_tuple(4, 120, 8, 2),
                      std::make_tuple(3, 50, 25, 0)));

TEST(ThresholdTest, StopsEarlierThanFaginOnCorrelatedData) {
  Rng rng(77);
  const auto lists = GenerateLists(3, 2000, ListCorrelation::kCorrelated, rng);
  const auto ta = ThresholdTopK(lists, 10);
  const auto fa = FaginTopK(lists, 10);
  EXPECT_LT(ta.max_depth, fa.max_depth);
  EXPECT_LT(ta.max_depth, 2000);  // far from scanning everything
}

TEST(ThresholdTest, AntiCorrelationForcesDepth) {
  Rng rng(78);
  const auto corr_lists =
      GenerateLists(2, 1000, ListCorrelation::kCorrelated, rng);
  const auto anti_lists =
      GenerateLists(2, 1000, ListCorrelation::kAntiCorrelated, rng);
  const auto corr = ThresholdTopK(corr_lists, 5);
  const auto anti = ThresholdTopK(anti_lists, 5);
  EXPECT_GT(anti.max_depth, corr.max_depth);
}

TEST(NraTest, UsesNoRandomAccess) {
  Rng rng(79);
  const auto lists = GenerateLists(3, 300, ListCorrelation::kIndependent, rng);
  const auto nra = NraTopK(lists, 5);
  EXPECT_EQ(nra.random_accesses, 0);
  EXPECT_GT(nra.sorted_accesses, 0);
}

// ---- Rank join. ----

struct JoinInstance {
  Database db;
  ConjunctiveQuery query;
};

JoinInstance MakePathInstance(size_t len, size_t tuples, Value domain,
                              uint64_t seed) {
  JoinInstance t;
  Rng rng(seed);
  for (size_t i = 0; i < len; ++i) {
    const RelationId id = t.db.Add(
        UniformBinaryRelation("R" + std::to_string(i), tuples, domain, rng));
    t.query.AddAtom(id, {static_cast<VarId>(i), static_cast<VarId>(i + 1)});
  }
  return t;
}

std::vector<double> OracleSortedCosts(const JoinInstance& t) {
  const Relation out = NestedLoopJoin(t.db, t.query);
  std::vector<double> costs;
  for (RowId r = 0; r < out.NumTuples(); ++r) costs.push_back(out.TupleWeight(r));
  std::sort(costs.begin(), costs.end());
  return costs;
}

TEST(RankJoinTest, FullDrainMatchesOracle) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    JoinInstance t = MakePathInstance(2, 25, 4, seed);
    std::vector<size_t> order = {0, 1};
    RankJoinPlan plan(t.db, t.query, order);
    std::vector<double> costs;
    double prev = -1e300;
    while (auto r = plan.Next()) {
      EXPECT_GE(r->second, prev - 1e-12);
      prev = r->second;
      costs.push_back(r->second);
    }
    const auto expected = OracleSortedCosts(t);
    ASSERT_EQ(costs.size(), expected.size()) << "seed=" << seed;
    for (size_t i = 0; i < costs.size(); ++i) {
      EXPECT_NEAR(costs[i], expected[i], 1e-9);
    }
  }
}

TEST(RankJoinTest, MultiwayLeftDeepMatchesOracle) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    JoinInstance t = MakePathInstance(3, 20, 4, seed);
    RankJoinPlan plan(t.db, t.query, {0, 1, 2});
    std::vector<double> costs;
    while (auto r = plan.Next()) costs.push_back(r->second);
    const auto expected = OracleSortedCosts(t);
    ASSERT_EQ(costs.size(), expected.size()) << "seed=" << seed;
    for (size_t i = 0; i < costs.size(); ++i) {
      EXPECT_NEAR(costs[i], expected[i], 1e-9) << "seed=" << seed;
    }
  }
}

TEST(RankJoinTest, CyclicQuerySupported) {
  Rng rng(31);
  Database db;
  const RelationId e = db.Add(UniformBinaryRelation("E", 40, 5, rng));
  ConjunctiveQuery q;
  q.AddAtom(e, {0, 1});
  q.AddAtom(e, {1, 2});
  q.AddAtom(e, {2, 0});
  JoinInstance t;
  t.query = q;
  RankJoinPlan plan(db, q, {0, 1, 2});
  std::vector<double> costs;
  while (auto r = plan.Next()) costs.push_back(r->second);
  const Relation oracle = NestedLoopJoin(db, q);
  std::vector<double> expected;
  for (RowId r = 0; r < oracle.NumTuples(); ++r) {
    expected.push_back(oracle.TupleWeight(r));
  }
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(costs.size(), expected.size());
  for (size_t i = 0; i < costs.size(); ++i) {
    EXPECT_NEAR(costs[i], expected[i], 1e-9);
  }
}

TEST(RankJoinTest, EarlyTerminationReadsLessThanEverything) {
  // Friendly instance: weights uniform; top-1 should not require reading
  // all inputs.
  JoinInstance t = MakePathInstance(2, 2000, 10, 41);
  RankJoinPlan plan(t.db, t.query, {0, 1});
  const auto first = plan.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_LT(plan.TotalTuplesRead(), 4000);
}

TEST(RankJoinTest, BottomWinnerForcesDeepReads) {
  // Adversarial: the only joinable pair sits at the BOTTOM of both
  // inputs (max weights). HRJN must read everything.
  Database db;
  Relation r = Relation::WithArity("R", 2);
  Relation s = Relation::WithArity("S", 2);
  const size_t n = 200;
  for (size_t i = 0; i < n; ++i) {
    // Non-joining filler with light weights: R's second column never
    // matches S's first column (disjoint domains), except the planted
    // heavy pair.
    r.AddTuple({static_cast<Value>(i), static_cast<Value>(1000 + i)},
               0.001 * static_cast<double>(i));
    s.AddTuple({static_cast<Value>(5000 + i), static_cast<Value>(i)},
               0.001 * static_cast<double>(i));
  }
  r.AddTuple({7, 9999}, 10.0);
  s.AddTuple({9999, 8}, 10.0);
  const RelationId rid = db.Add(std::move(r)), sid = db.Add(std::move(s));
  ConjunctiveQuery q;
  q.AddAtom(rid, {0, 1});
  q.AddAtom(sid, {1, 2});
  RankJoinPlan plan(db, q, {0, 1});
  const auto first = plan.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_NEAR(first->second, 20.0, 1e-9);
  // Both inputs were read to the bottom and fully buffered.
  EXPECT_EQ(plan.TotalTuplesRead(), static_cast<int64_t>(2 * (n + 1)));
  EXPECT_GE(plan.TotalBuffered(), static_cast<int64_t>(2 * n));
}

// ---- J*. ----

TEST(JStarTest, MatchesOracleOnPaths) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    JoinInstance t = MakePathInstance(3, 18, 4, seed);
    JStar js(t.db, t.query, {0, 1, 2});
    std::vector<double> costs;
    double prev = -1e300;
    while (auto r = js.Next()) {
      EXPECT_GE(r->second, prev - 1e-12);
      prev = r->second;
      costs.push_back(r->second);
    }
    const auto expected = OracleSortedCosts(t);
    ASSERT_EQ(costs.size(), expected.size()) << "seed=" << seed;
    for (size_t i = 0; i < costs.size(); ++i) {
      EXPECT_NEAR(costs[i], expected[i], 1e-9);
    }
  }
}

TEST(JStarTest, MatchesOracleOnCyclicTriangle) {
  Rng rng(53);
  Database db;
  const RelationId e = db.Add(UniformBinaryRelation("E", 30, 5, rng));
  ConjunctiveQuery q;
  q.AddAtom(e, {0, 1});
  q.AddAtom(e, {1, 2});
  q.AddAtom(e, {2, 0});
  JStar js(db, q, {0, 1, 2});
  std::vector<double> costs;
  while (auto r = js.Next()) costs.push_back(r->second);
  const Relation oracle = NestedLoopJoin(db, q);
  std::vector<double> expected;
  for (RowId r = 0; r < oracle.NumTuples(); ++r) {
    expected.push_back(oracle.TupleWeight(r));
  }
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(costs.size(), expected.size());
  for (size_t i = 0; i < costs.size(); ++i) {
    EXPECT_NEAR(costs[i], expected[i], 1e-9);
  }
}

TEST(JStarTest, TopKAgreesWithAnyK) {
  JoinInstance t = MakePathInstance(3, 40, 5, 61);
  JStar js(t.db, t.query, {0, 1, 2});
  auto anyk = MakeAnyK(t.db, t.query, AnyKAlgorithm::kRec);
  for (int i = 0; i < 25; ++i) {
    const auto a = js.Next();
    const auto b = anyk->Next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_NEAR(a->second, b->cost, 1e-9) << "rank " << i;
  }
}

TEST(JStarTest, EmptyJoin) {
  Database db;
  Relation r = Relation::WithArity("R", 2);
  r.AddTuple({1, 2}, 0.1);
  Relation s = Relation::WithArity("S", 2);
  s.AddTuple({3, 4}, 0.1);
  const RelationId rid = db.Add(std::move(r)), sid = db.Add(std::move(s));
  ConjunctiveQuery q;
  q.AddAtom(rid, {0, 1});
  q.AddAtom(sid, {1, 2});
  JStar js(db, q, {0, 1});
  EXPECT_FALSE(js.Next().has_value());
}

}  // namespace
}  // namespace topkjoin
