// Tests for src/stats/ and the planner behaviors it unlocks: reservoir
// samples and join-key sketches, the sampling cardinality estimator's
// accuracy envelope on uniform and Zipf-skewed instances (where the AGM
// bound is off by orders of magnitude), AGM-failure handling in the
// planner (an LP failure must read as "unknown", never "tiny"), the
// AGM upper-bound clamp, and the cost-aware bag grouping that routes
// skewed cyclic queries to demonstrably cheaper plans.
#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/delta.h"
#include "src/data/generators.h"
#include "src/engine/engine.h"
#include "src/join/nested_loop.h"
#include "src/query/agm.h"
#include "src/query/decomposition.h"
#include "src/stats/cardinality_estimator.h"
#include "src/stats/estimator_cache.h"
#include "src/util/rng.h"
#include "tests/test_instances.h"

namespace topkjoin {
namespace {

using testing_fixtures::Drain;
using testing_fixtures::Instance;
using testing_fixtures::MakePathInstance;
using testing_fixtures::MakeStarInstance;
using testing_fixtures::MakeTriangleInstance;

double TrueOutput(const Database& db, const ConjunctiveQuery& query) {
  return static_cast<double>(NestedLoopJoin(db, query).NumTuples());
}

// Symmetric error factor: 1.0 is exact, 10.0 is "one order of magnitude
// off in either direction". Defined for positive values only.
double ErrorFactor(double estimate, double truth) {
  EXPECT_GT(estimate, 0.0);
  EXPECT_GT(truth, 0.0);
  return std::max(estimate / truth, truth / estimate);
}

// ------------------------------------------------------ relation sample

TEST(RelationSampleTest, ReservoirIsDeterministicSizedAndScaled) {
  Rng rng(1);
  const Relation r = UniformRelation("R", 2, 1000, 50, rng);
  const RelationSample a(r, 100, 7);
  const RelationSample b(r, 100, 7);
  EXPECT_EQ(a.sampled_rows(), b.sampled_rows());  // deterministic
  EXPECT_EQ(a.sampled_rows().size(), 100u);
  EXPECT_NEAR(a.scale(), 10.0, 1e-9);
  // Sampled rows are valid and strictly ascending (no duplicates).
  for (size_t i = 1; i < a.sampled_rows().size(); ++i) {
    EXPECT_LT(a.sampled_rows()[i - 1], a.sampled_rows()[i]);
    EXPECT_LT(a.sampled_rows()[i], r.NumTuples());
  }
  // A different seed draws a different sample (overwhelmingly likely).
  const RelationSample c(r, 100, 8);
  EXPECT_NE(a.sampled_rows(), c.sampled_rows());

  const RelationSample full(r, 5000, 7);
  EXPECT_EQ(full.sampled_rows().size(), 1000u);
  EXPECT_NEAR(full.scale(), 1.0, 1e-12);
}

TEST(RelationSampleTest, DistinctEstimateExactWhenFullySampled) {
  Relation r = Relation::WithArity("R", 2);
  for (Value v = 0; v < 30; ++v) r.AddTuple({v % 5, v}, 0.0);
  const RelationSample full(r, 100, 3);
  EXPECT_NEAR(full.EstimateDistinct(0), 5.0, 1e-9);
  EXPECT_NEAR(full.EstimateDistinct(1), 30.0, 1e-9);
}

TEST(RelationSampleTest, KeySketchKeepsCrossColumnCorrelation) {
  // Columns are perfectly correlated: (v, v) pairs only. A composite
  // sketch sees 10 distinct keys; independent per-column histograms
  // would suggest 100 combinations.
  Relation r = Relation::WithArity("R", 2);
  for (Value v = 0; v < 10; ++v) {
    r.AddTuple({v, v}, 0.0);
    r.AddTuple({v, v}, 0.0);
  }
  const RelationSample full(r, 100, 3);
  const JoinKeySketch sketch = full.KeySketch({0, 1});
  EXPECT_EQ(sketch.counts.size(), 10u);
  EXPECT_NEAR(sketch.EstimateFrequency(ValueKey{{3, 3}}), 2.0, 1e-9);
  EXPECT_NEAR(sketch.EstimateFrequency(ValueKey{{3, 4}}), 0.0, 1e-9);
}

// ------------------------------------------------- estimator: accuracy

TEST(CardinalityEstimatorTest, ExactOnFullySampledInstances) {
  // Sample size >= relation size means the sample join IS the real
  // join: estimates must be exact, for acyclic and cyclic queries, and
  // exactly zero when the output is empty.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Instance path = MakePathInstance(3, 40, 4, seed);
    Instance star = MakeStarInstance(35, 4, seed);
    Instance tri = MakeTriangleInstance(30, 5, seed);
    for (const Instance* t : {&path, &star, &tri}) {
      const CardinalityEstimator est(t->db);
      EXPECT_NEAR(est.EstimateOutput(t->query), TrueOutput(t->db, t->query),
                  1e-6)
          << "seed=" << seed;
    }
  }
}

TEST(CardinalityEstimatorTest, WithinEnvelopeOnSubsampledUniform) {
  Instance t = MakePathInstance(2, 3000, 40, 11);
  EstimatorOptions options;
  options.sample_size = 256;
  const CardinalityEstimator est(t.db, options);
  const double truth = TrueOutput(t.db, t.query);
  ASSERT_GT(truth, 0.0);
  EXPECT_LE(ErrorFactor(est.EstimateOutput(t.query), truth), 10.0);
}

// The acceptance workload: Zipf-skewed join columns make the AGM bound
// (which only sees relation sizes) off by >= 100x, while the sampling
// estimator stays within 10x of the true cardinality.
TEST(CardinalityEstimatorTest, ZipfSkewWhereAgmIsOffByOrdersOfMagnitude) {
  Rng rng(42);
  Database db;
  const RelationId r =
      db.Add(SkewedBinaryRelation("R", 3000, 1000, 1.1, rng));
  const RelationId s =
      db.Add(SkewedBinaryRelation("S", 3000, 1000, 1.1, rng));
  ConjunctiveQuery q;  // R(x0,x1), S(x1,x2): x1 = uniform col of R,
  q.AddAtom(r, {0, 1});  // Zipf col of S
  q.AddAtom(s, {1, 2});

  const double truth = TrueOutput(db, q);
  ASSERT_GT(truth, 0.0);
  const auto agm = AgmBound(q, db);
  ASSERT_TRUE(agm.ok());
  EXPECT_GE(agm.value() / truth, 100.0)
      << "workload no longer exercises the loose-AGM regime";

  EstimatorOptions options;
  options.sample_size = 512;
  const CardinalityEstimator est(db, options);
  EXPECT_LE(ErrorFactor(est.EstimateOutput(q), truth), 10.0)
      << "estimate=" << est.EstimateOutput(q) << " truth=" << truth
      << " agm=" << agm.value();
}

TEST(CardinalityEstimatorTest, EdgeSelectivityRecoversPairJoinSize) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Instance t = MakeTriangleInstance(60, 6, seed);
    const CardinalityEstimator est(t.db);  // fully sampled
    for (const auto [i, j] : {std::pair<size_t, size_t>{0, 1},
                              std::pair<size_t, size_t>{1, 2},
                              std::pair<size_t, size_t>{0, 2}}) {
      ConjunctiveQuery pair;
      pair.AddAtom(t.query.atom(i).relation, t.query.atom(i).vars);
      pair.AddAtom(t.query.atom(j).relation, t.query.atom(j).vars);
      const double sel = est.EstimateEdgeSelectivity(t.query, i, j);
      const double ni = static_cast<double>(
          t.db.relation(t.query.atom(i).relation).NumTuples());
      const double nj = static_cast<double>(
          t.db.relation(t.query.atom(j).relation).NumTuples());
      EXPECT_NEAR(sel * ni * nj, TrueOutput(t.db, pair), 1e-6)
          << "seed=" << seed << " edge " << i << "-" << j;
    }
  }
}

TEST(CardinalityEstimatorTest, EmptyRelationGivesZero) {
  Database db;
  const RelationId r = db.Add(Relation::WithArity("R", 2));
  Rng rng(3);
  const RelationId s = db.Add(UniformBinaryRelation("S", 20, 4, rng));
  ConjunctiveQuery q;
  q.AddAtom(r, {0, 1});
  q.AddAtom(s, {1, 2});
  const CardinalityEstimator est(db);
  EXPECT_EQ(est.EstimateOutput(q), 0.0);
}

// ---------------------------------------------- planner: AGM handling

TEST(PlannerEstimateTest, AgmFailureBecomesUnknownNotTiny) {
  // The old mapping turned an AgmBound error into estimated_output = 0,
  // which ChooseTreeAlgorithm read as "k covers the whole (tiny) output"
  // and used to justify batch-then-sort for any k > the any-k threshold.
  QueryPlan plan;
  const double bound =
      ResolveAgmBound(StatusOr<double>(Status::Error("lp failed")), &plan);
  EXPECT_TRUE(std::isinf(bound));
  EXPECT_GT(bound, 0.0);
  EXPECT_NE(plan.rationale.find("AGM bound unavailable"), std::string::npos);

  // With the unknown (infinite) estimate, a huge k must NOT pick batch.
  ExecutionOptions opts;
  opts.k = 1u << 22;
  QueryPlan unknown_plan;
  const AnyKAlgorithm algo = ChooseTreeAlgorithm(
      opts, std::numeric_limits<double>::infinity(), &unknown_plan);
  EXPECT_NE(algo, AnyKAlgorithm::kBatch);
  EXPECT_NE(unknown_plan.rationale.find("unknown"), std::string::npos);

  // Contrast: the buggy 0.0 mapping *would* have picked batch.
  QueryPlan tiny_plan;
  EXPECT_EQ(ChooseTreeAlgorithm(opts, 0.0, &tiny_plan),
            AnyKAlgorithm::kBatch);

  // A successful bound passes through untouched, with no note.
  QueryPlan ok_plan;
  EXPECT_NEAR(ResolveAgmBound(StatusOr<double>(123.0), &ok_plan), 123.0,
              1e-12);
  EXPECT_TRUE(ok_plan.rationale.empty());
}

TEST(PlannerEstimateTest, EstimatedOutputClampedByAgmAndTighterOnSkew) {
  // The AGM-hard triangle: output Theta(n) but AGM n^1.5. The sampled
  // estimate must respect the clamp and sit far below the worst case.
  // Sized within the default sample (the hub-value correlation of this
  // instance is exactly what per-relation *sub*sampling struggles with;
  // subsampled accuracy is covered by the Zipf envelope test above).
  Rng rng(5);
  Database db;
  ConjunctiveQuery q;
  const RelationId r = db.Add(AgmHardRelation("R", 250, rng));
  const RelationId s = db.Add(AgmHardRelation("S", 250, rng));
  const RelationId w = db.Add(AgmHardRelation("T", 250, rng));
  q.AddAtom(r, {0, 1});
  q.AddAtom(s, {1, 2});
  q.AddAtom(w, {2, 0});

  Engine engine;
  const auto plan = engine.Explain(db, q, {}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan.value().estimated_output, plan.value().agm_bound * (1 + 1e-9));
  EXPECT_NE(plan.value().rationale.find("sampling estimator"),
            std::string::npos);
  const double truth = TrueOutput(db, q);
  ASSERT_GT(truth, 0.0);
  EXPECT_GE(plan.value().agm_bound / truth, 10.0);
  EXPECT_LE(ErrorFactor(plan.value().estimated_output, truth), 10.0);
}

TEST(PlannerEstimateTest, IntermediateEstimateFollowsStrategy) {
  Instance t = MakePathInstance(3, 60, 5, 7);
  Engine engine;
  // Streaming any-k materializes nothing up front.
  const auto anyk = engine.Explain(t.db, t.query, {}, {});
  ASSERT_TRUE(anyk.ok());
  EXPECT_EQ(anyk.value().estimated_intermediate, 0.0);
  // Batch pays for the whole output before sorting.
  ExecutionOptions opts;
  opts.k = 1u << 22;
  const auto batch = engine.Explain(t.db, t.query, {}, opts);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value().strategy, PlanStrategy::kBatchSort);
  EXPECT_NEAR(batch.value().estimated_intermediate,
              batch.value().estimated_output, 1e-9);
  // Decomposed cyclic plans estimate their bag sizes.
  Instance tri = MakeTriangleInstance(30, 5, 3);
  const auto decomposed = engine.Explain(tri.db, tri.query, {}, {});
  ASSERT_TRUE(decomposed.ok());
  EXPECT_EQ(decomposed.value().strategy, PlanStrategy::kDecompose);
  EXPECT_GT(decomposed.value().estimated_intermediate, 0.0);
}

// ------------------------------------- planner: cost-aware bag grouping

// Skewed triangle where the blind shared-variable greedy picks the
// worst possible bag: R joins S on a single super-heavy key (|R join S|
// = n^2) while either join involving T has only n matches. The
// estimator must route the grouping away from the n^2 bag -- the
// "demonstrably cheaper plan" acceptance pin.
Instance MakeSkewedTriangle(Value n) {
  Instance t;
  Relation r("R", {"a", "b"});
  Relation s("S", {"b", "c"});
  Relation w("T", {"c", "a"});
  Rng rng(17);
  for (Value i = 0; i < n; ++i) {
    r.AddTuple({i, 0}, rng.NextDouble());  // every R tuple has b = 0
    s.AddTuple({0, i}, rng.NextDouble());  // every S tuple has b = 0
    w.AddTuple({i, i}, rng.NextDouble());  // T is the diagonal
  }
  const RelationId rid = t.db.Add(std::move(r));
  const RelationId sid = t.db.Add(std::move(s));
  const RelationId wid = t.db.Add(std::move(w));
  t.query.AddAtom(rid, {0, 1});
  t.query.AddAtom(sid, {1, 2});
  t.query.AddAtom(wid, {2, 0});
  return t;
}

TEST(PlannerEstimateTest, SkewRoutesGroupingAwayFromQuadraticBag) {
  Instance t = MakeSkewedTriangle(200);

  // The blind greedy merges atoms 0 and 1 (lowest-index tie-break): a
  // 200^2-tuple bag.
  const auto blind = FindAcyclicGrouping(t.query);
  ASSERT_TRUE(blind.has_value());
  ASSERT_EQ(blind->groups.size(), 2u);
  EXPECT_EQ(blind->groups[0], (std::vector<size_t>{0, 1}));

  // The estimator-driven planner must pick a different grouping whose
  // bags avoid the quadratic join.
  Engine engine;
  auto result = engine.Execute(t.db, t.query, {}, {});
  ASSERT_TRUE(result.ok());
  const QueryPlan& plan = result.value().plan;
  ASSERT_EQ(plan.strategy, PlanStrategy::kDecompose);
  ASSERT_TRUE(plan.grouping.has_value());
  EXPECT_NE(plan.grouping->groups, blind->groups);
  EXPECT_LE(plan.estimated_intermediate, 2000.0);

  // The cheaper plan is real, not just estimated: materializing the
  // blind grouping costs >= 40000 intermediate tuples, the chosen one
  // a few hundred.
  JoinStats blind_stats;
  MaterializeGrouping(t.db, t.query, *blind, &blind_stats);
  EXPECT_GE(blind_stats.intermediate_tuples, 40000);
  EXPECT_LE(result.value().preprocessing.intermediate_tuples, 1000);
  EXPECT_GT(blind_stats.intermediate_tuples,
            10 * result.value().preprocessing.intermediate_tuples);

  // And the stream is still exactly right: the 200 triangles, ranked.
  const auto got = Drain(result.value().stream.get());
  const Relation oracle = NestedLoopJoin(t.db, t.query);
  ASSERT_EQ(got.size(), oracle.NumTuples());
  std::vector<double> want;
  for (RowId i = 0; i < oracle.NumTuples(); ++i) {
    want.push_back(oracle.TupleWeight(i));
  }
  std::sort(want.begin(), want.end());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].cost, want[i], 1e-9) << "rank " << i;
  }
}

// The cost-aware grouping is available directly with a caller-supplied
// cost function (the planner's estimator is one such).
TEST(CostAwareGroupingTest, HonorsTheCostFunction) {
  Instance t = MakeSkewedTriangle(50);
  const CardinalityEstimator est(t.db);
  const auto grouping =
      FindAcyclicGrouping(t.query, [&](const std::vector<size_t>& atoms) {
        return est.EstimateJoinSize(t.query, atoms);
      });
  ASSERT_TRUE(grouping.has_value());
  EXPECT_TRUE(IsAcyclicGrouping(t.query, *grouping));
  // Merging R with T (or S with T) costs ~50; merging R with S costs
  // 2500. The greedy must avoid the quadratic merge.
  for (const auto& group : grouping->groups) {
    EXPECT_NE(group, (std::vector<size_t>{0, 1}));
  }
}

// ----------------------------------------- live-update sample patching

TEST(RelationSampleTest, ExtendToMatchesFreshDrawWhileFullySampled) {
  Rng rng(11);
  Relation r = UniformBinaryRelation("R", 60, 20, rng);
  RelationSample s(r, 200, 7);
  // Grow the relation but stay within the reservoir capacity: the
  // continued reservoir must equal a fresh draw bit-for-bit (both are
  // just "all rows").
  Relation grown = r;
  for (int i = 0; i < 40; ++i) grown.AddTuple({i, i + 1}, 0.5);
  s.ExtendTo(grown);
  const RelationSample fresh(grown, 200, 7);
  EXPECT_EQ(s.sampled_rows(), fresh.sampled_rows());
  EXPECT_EQ(s.num_seen(), 100u);
  EXPECT_NEAR(s.scale(), 1.0, 1e-12);
}

TEST(RelationSampleTest, ExtendToStaysValidUniformReservoirBeyondCapacity) {
  Rng rng(12);
  Relation r = UniformBinaryRelation("R", 1000, 50, rng);
  RelationSample a(r, 100, 7);
  RelationSample b(r, 100, 7);
  Relation grown = r;
  for (int i = 0; i < 1000; ++i) grown.AddTuple({i % 50, i % 49}, 0.5);
  a.ExtendTo(grown);
  b.ExtendTo(grown);
  // Deterministic continuation, valid reservoir invariants.
  EXPECT_EQ(a.sampled_rows(), b.sampled_rows());
  ASSERT_EQ(a.sampled_rows().size(), 100u);
  EXPECT_EQ(a.num_seen(), 2000u);
  EXPECT_NEAR(a.scale(), 20.0, 1e-9);
  bool saw_appended = false;
  for (size_t i = 0; i < a.sampled_rows().size(); ++i) {
    if (i > 0) {
      EXPECT_LT(a.sampled_rows()[i - 1], a.sampled_rows()[i]);
    }
    EXPECT_LT(a.sampled_rows()[i], grown.NumTuples());
    saw_appended |= a.sampled_rows()[i] >= 1000;
  }
  // Appended rows displace old ones with the right probability; with
  // 1000 appended rows vying for 100 slots, at least one landing is a
  // (1 - ~2^-100) certainty.
  EXPECT_TRUE(saw_appended);
}

TEST(EstimatorCacheTest, KeyedLruServesTwoDatabasesWithoutThrash) {
  Instance a = MakePathInstance(2, 200, 30, 21);
  Instance b = MakePathInstance(2, 200, 30, 22);
  EstimatorCache cache(4);
  cache.For(a.db);
  cache.For(b.db);
  // The old single-entry cache rebuilt on every alternation; the keyed
  // LRU must hold both.
  cache.For(a.db);
  cache.For(b.db);
  cache.For(a.db);
  EXPECT_EQ(cache.NumBuilds(), 2u);
  EXPECT_EQ(cache.NumPatches(), 0u);
}

TEST(EstimatorCacheTest, AppendDeltaPatchesInsteadOfRebuilding) {
  Database db;
  Rng rng(23);
  const RelationId e = db.Add(UniformBinaryRelation("E", 300, 40, rng));
  ConjunctiveQuery q;
  q.AddAtom(e, {0, 1});

  EstimatorCache cache;
  const auto before = cache.For(db);
  EXPECT_EQ(cache.NumBuilds(), 1u);
  EXPECT_DOUBLE_EQ(before->EstimateOutput(q), 300.0);

  Delta d;
  for (int i = 0; i < 10; ++i) d.ForRelation(e).AddTuple({i, i}, 0.5);
  ASSERT_TRUE(db.ApplyDelta(d).ok());

  // Covered gap: the stale estimator is copied + extended, not rebuilt,
  // and the patched copy sees the appended rows.
  const auto after = cache.For(db);
  EXPECT_EQ(cache.NumBuilds(), 1u);
  EXPECT_EQ(cache.NumPatches(), 1u);
  EXPECT_DOUBLE_EQ(after->EstimateOutput(q), 310.0);
  // The pre-delta estimator still serves its pinned snapshot.
  EXPECT_DOUBLE_EQ(before->EstimateOutput(q), 300.0);

  // A barrier mutation clears the log: next For() is a full rebuild.
  db.mutable_relation(e)->DeduplicateKeepLightest();
  cache.For(db);
  EXPECT_EQ(cache.NumBuilds(), 2u);
  EXPECT_EQ(cache.NumPatches(), 1u);
}

// The epoch-regression race: a request pins its snapshot, a delta
// commits, and a concurrent request caches the estimator at the NEWER
// epoch before the first request reaches the cache. The old code
// "patched" the newer entry backwards -- RetargetAndExtend over a
// smaller relation trips the fatal reservoir check and aborts the
// process -- and rewrote the entry's epoch down.
TEST(EstimatorCacheTest, OlderSnapshotNeverRegressesNewerEntry) {
  Database db;
  Rng rng(29);
  const RelationId e = db.Add(UniformBinaryRelation("E", 300, 40, rng));
  ConjunctiveQuery q;
  q.AddAtom(e, {0, 1});

  const auto pinned = db.Snapshot();  // the slow request's snapshot
  Delta d;
  for (int i = 0; i < 10; ++i) d.ForRelation(e).AddTuple({i, i}, 0.5);
  ASSERT_TRUE(db.ApplyDelta(d).ok());

  EstimatorCache cache;
  const auto fresh = cache.For(db);  // the racing request wins the slot
  EXPECT_EQ(cache.NumBuilds(), 1u);
  EXPECT_DOUBLE_EQ(fresh->EstimateOutput(q), 310.0);

  // The pinned-snapshot request gets a one-off estimator over its own
  // epoch's data -- no abort, no patch, newer entry untouched.
  const auto old_est = cache.For(db, pinned);
  EXPECT_DOUBLE_EQ(old_est->EstimateOutput(q), 300.0);
  EXPECT_EQ(cache.NumBuilds(), 2u);
  EXPECT_EQ(cache.NumPatches(), 0u);

  // The cached entry still serves the live epoch as a plain hit.
  const auto live = cache.For(db);
  EXPECT_EQ(cache.NumBuilds(), 2u);
  EXPECT_DOUBLE_EQ(live->EstimateOutput(q), 310.0);
}

// An entry older than the pinned snapshot still patches -- but only up
// to the snapshot: deltas committed past it (the live database moved
// on) must not leak into the patched estimator.
TEST(EstimatorCacheTest, PatchStopsAtThePinnedIntermediateEpoch) {
  Database db;
  Rng rng(31);
  const RelationId e = db.Add(UniformBinaryRelation("E", 300, 40, rng));
  ConjunctiveQuery q;
  q.AddAtom(e, {0, 1});

  EstimatorCache cache;
  cache.For(db);  // entry at the base epoch
  EXPECT_EQ(cache.NumBuilds(), 1u);

  Delta d1;
  for (int i = 0; i < 10; ++i) d1.ForRelation(e).AddTuple({i, i}, 0.5);
  ASSERT_TRUE(db.ApplyDelta(d1).ok());
  const auto pinned = db.Snapshot();  // intermediate epoch: 310 rows
  Delta d2;
  for (int i = 0; i < 10; ++i) d2.ForRelation(e).AddTuple({i, i + 1}, 0.5);
  ASSERT_TRUE(db.ApplyDelta(d2).ok());  // live epoch: 320 rows

  const auto est = cache.For(db, pinned);
  EXPECT_EQ(cache.NumBuilds(), 1u);
  EXPECT_EQ(cache.NumPatches(), 1u);
  EXPECT_DOUBLE_EQ(est->EstimateOutput(q), 310.0);
}

}  // namespace
}  // namespace topkjoin
