// Randomized differential testing of the engine: ~230 random connected
// conjunctive queries (acyclic and cyclic, with self-joins and parallel
// edges) over small random databases, each executed through
// Engine::Execute and compared against a brute-force join-then-sort
// oracle. The comparison is exactly what the any-k contract promises:
//   * the emitted cost sequence is non-decreasing (ties may reorder);
//   * the multiset of (assignment, cost) results equals the oracle's --
//     nothing lost, nothing duplicated, nothing invented.
// Acyclic queries run under all four cost dioids (SUM/MAX/PROD/LEX);
// cyclic queries run under SUM and must cleanly reject the rest (bag
// weights only decompose additively).
//
// Atoms are kept binary: that is the paper's graph-pattern regime, and
// it already produces every structural family the planner routes --
// paths, stars, triangles, 4-cycles, and larger tangles.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/generators.h"
#include "src/engine/engine.h"
#include "src/query/hypergraph.h"
#include "src/ranking/cost_model.h"
#include "src/util/rng.h"
#include "tests/test_instances.h"

namespace topkjoin {
namespace {

using testing_fixtures::Drain;

struct RandomCase {
  Database db;
  ConjunctiveQuery query;
};

// A connected random query over binary atoms. Each new atom either
// chains off existing variables (possibly closing a cycle) or introduces
// fresh ones; relations are occasionally reused across atoms
// (self-joins). Variables are dense by construction: every new VarId is
// allocated consecutively and used immediately.
RandomCase MakeRandomCase(Rng& rng) {
  RandomCase c;
  std::vector<RelationId> relations;
  int num_vars = 0;

  // A quarter of the cases are explicit L-cycles (L = 3..5, sometimes as
  // a self-join of one edge relation, sometimes with a pendant edge):
  // random growth rarely closes rings, and the planner's cyclic
  // strategies -- 4-cycle union-of-cases included -- need steady
  // differential coverage.
  if (rng.NextBounded(4) == 0) {
    const int cycle_len = 3 + static_cast<int>(rng.NextBounded(3));
    const bool self_join = rng.NextBounded(3) == 0;
    RelationId shared = 0;
    if (self_join) {
      const size_t tuples = 6 + rng.NextBounded(9);
      const Value domain = 3 + static_cast<Value>(rng.NextBounded(3));
      shared = c.db.Add(UniformBinaryRelation("E", tuples, domain, rng));
    }
    for (int i = 0; i < cycle_len; ++i) {
      RelationId rel = shared;
      if (!self_join) {
        const size_t tuples = 6 + rng.NextBounded(9);
        const Value domain = 3 + static_cast<Value>(rng.NextBounded(3));
        rel = c.db.Add(UniformBinaryRelation("R" + std::to_string(i), tuples,
                                             domain, rng));
      }
      c.query.AddAtom(rel, {i, (i + 1) % cycle_len});
    }
    num_vars = cycle_len;
    if (rng.NextBounded(3) == 0) {  // pendant edge off the ring
      const size_t tuples = 6 + rng.NextBounded(9);
      const Value domain = 3 + static_cast<Value>(rng.NextBounded(3));
      const RelationId rel =
          c.db.Add(UniformBinaryRelation("P", tuples, domain, rng));
      c.query.AddAtom(
          rel, {static_cast<VarId>(rng.NextBounded(num_vars)), num_vars});
    }
    return c;
  }

  const size_t num_atoms = 1 + rng.NextBounded(4);
  for (size_t a = 0; a < num_atoms; ++a) {
    // Pick endpoints: bias toward existing variables so cycles and stars
    // actually form, but always keep the query connected.
    VarId u, v;
    if (a == 0) {
      u = num_vars++;
      v = num_vars++;
    } else {
      u = static_cast<VarId>(rng.NextBounded(num_vars));  // stay connected
      if (rng.NextBounded(10) < 4 || num_vars < 2) {
        v = num_vars++;  // extend with a fresh variable (paths, stars)
      } else {
        // Second endpoint among the other existing variables: re-picking
        // a used pair yields parallel edges, a new pair closes a cycle.
        v = static_cast<VarId>(rng.NextBounded(num_vars - 1));
        if (v >= u) ++v;
      }
    }
    RelationId rel;
    if (!relations.empty() && rng.NextBounded(4) == 0) {
      rel = relations[rng.NextBounded(relations.size())];  // self-join
    } else {
      const size_t tuples = 6 + rng.NextBounded(9);
      const Value domain = 3 + static_cast<Value>(rng.NextBounded(3));
      rel = c.db.Add(UniformBinaryRelation(
          "R" + std::to_string(c.db.NumRelations()), tuples, domain, rng));
      relations.push_back(rel);
    }
    c.query.AddAtom(rel, {u, v});
  }
  return c;
}

struct OracleRow {
  std::vector<Value> assignment;
  double cost = 0.0;
};

// Brute-force evaluation: backtracking over atoms, one tuple at a time,
// combining per-tuple weights with the dioid policy. Exponential, but
// the instances are tiny by construction.
template <typename Policy>
std::vector<OracleRow> BruteForce(const Database& db,
                                  const ConjunctiveQuery& query) {
  std::vector<OracleRow> out;
  std::vector<Value> assignment(query.num_vars(), 0);
  std::vector<bool> bound(query.num_vars(), false);
  std::function<void(size_t, typename Policy::CostT)> recurse =
      [&](size_t atom_idx, typename Policy::CostT cost) {
        if (atom_idx == query.NumAtoms()) {
          out.push_back({assignment, Policy::ToDouble(cost)});
          return;
        }
        const Atom& atom = query.atom(atom_idx);
        const Relation& rel = db.relation(atom.relation);
        for (RowId row = 0; row < rel.NumTuples(); ++row) {
          bool consistent = true;
          std::vector<VarId> newly_bound;
          for (size_t col = 0; col < atom.vars.size(); ++col) {
            const VarId var = atom.vars[col];
            const Value value = rel.At(row, col);
            if (bound[var]) {
              if (assignment[var] != value) {
                consistent = false;
                break;
              }
            } else {
              bound[var] = true;
              assignment[var] = value;
              newly_bound.push_back(var);
            }
          }
          if (consistent) {
            recurse(atom_idx + 1,
                    Policy::Combine(cost,
                                    Policy::FromWeight(rel.TupleWeight(row))));
          }
          for (const VarId var : newly_bound) bound[var] = false;
        }
      };
  recurse(0, Policy::Identity());
  return out;
}

bool AssignmentLess(const std::vector<Value>& a, const std::vector<Value>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

// The differential contract. `check_costs` is off only for LEX, whose
// full cost (a per-stage weight sequence in pipeline combination order)
// is not observable through the double-valued stream; its assignment
// multiset and emission monotonicity are still checked.
void ExpectMatchesOracle(const std::vector<RankedResult>& got,
                         std::vector<OracleRow> want, bool check_costs,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;

  // Emission order must be non-decreasing in cost.
  for (size_t i = 1; i < got.size(); ++i) {
    ASSERT_LE(got[i - 1].cost, got[i].cost + 1e-9)
        << label << ": rank inversion at " << i;
  }

  // Multiset equality: sort both sides by (assignment, cost) and compare
  // pairwise. Ties in assignment+cost are interchangeable, and FP noise
  // between combination orders stays far under the tolerance.
  std::vector<OracleRow> sorted_got;
  sorted_got.reserve(got.size());
  for (const RankedResult& r : got) sorted_got.push_back({r.assignment, r.cost});
  const auto by_assignment_then_cost = [](const OracleRow& a,
                                          const OracleRow& b) {
    if (a.assignment != b.assignment) {
      return AssignmentLess(a.assignment, b.assignment);
    }
    return a.cost < b.cost;
  };
  std::sort(sorted_got.begin(), sorted_got.end(), by_assignment_then_cost);
  std::sort(want.begin(), want.end(), by_assignment_then_cost);
  for (size_t i = 0; i < sorted_got.size(); ++i) {
    ASSERT_EQ(sorted_got[i].assignment, want[i].assignment)
        << label << ": assignment multiset mismatch at " << i;
    if (check_costs) {
      ASSERT_NEAR(sorted_got[i].cost, want[i].cost, 1e-6)
          << label << ": cost mismatch at " << i;
    }
  }
}

template <typename Policy>
void RunDifferential(const RandomCase& c, CostModelKind kind,
                     const std::string& label) {
  Engine engine;
  RankingSpec ranking;
  ranking.model = kind;
  auto result = engine.Execute(c.db, c.query, ranking, {});
  ASSERT_TRUE(result.ok()) << label << ": " << result.status().message();
  ExpectMatchesOracle(Drain(result.value().stream.get()),
                      BruteForce<Policy>(c.db, c.query),
                      /*check_costs=*/kind != CostModelKind::kLex, label);
}

TEST(DifferentialTest, RandomQueriesMatchBruteForceOracleAcrossDioids) {
  constexpr size_t kNumQueries = 230;
  Rng rng(20260729);
  size_t acyclic_count = 0;
  size_t cyclic_count = 0;

  for (size_t q = 0; q < kNumQueries; ++q) {
    const RandomCase c = MakeRandomCase(rng);
    const bool acyclic = IsAcyclic(c.query);
    const std::string label = "query " + std::to_string(q) + " (" +
                              (acyclic ? "acyclic" : "cyclic") + ") " +
                              c.query.DebugString(c.db);

    if (acyclic) {
      ++acyclic_count;
      RunDifferential<SumCost>(c, CostModelKind::kSum, label + " [sum]");
      RunDifferential<MaxCost>(c, CostModelKind::kMax, label + " [max]");
      RunDifferential<ProdCost>(c, CostModelKind::kProd, label + " [prod]");
      RunDifferential<LexCost>(c, CostModelKind::kLex, label + " [lex]");
    } else {
      ++cyclic_count;
      RunDifferential<SumCost>(c, CostModelKind::kSum, label + " [sum]");
      // Non-SUM rankings must be rejected up front, not silently wrong.
      for (const CostModelKind kind :
           {CostModelKind::kMax, CostModelKind::kProd, CostModelKind::kLex}) {
        Engine engine;
        RankingSpec ranking;
        ranking.model = kind;
        EXPECT_FALSE(engine.Execute(c.db, c.query, ranking, {}).ok())
            << label << ": cyclic query accepted non-SUM ranking";
      }
    }
  }

  // The generator must actually cover both planner families.
  EXPECT_GE(acyclic_count, 80u);
  EXPECT_GE(cyclic_count, 30u);
  EXPECT_EQ(acyclic_count + cyclic_count, kNumQueries);
}

// The planner's k hint changes the chosen algorithm (any-k variant vs
// batch-then-sort); none of them may change the stream's content. Pin a
// smaller sweep across forced algorithms.
TEST(DifferentialTest, AllAlgorithmsAgreeOnAcyclicQueries) {
  constexpr size_t kNumQueries = 40;
  Rng rng(977);
  size_t tested = 0;
  for (size_t q = 0; q < kNumQueries; ++q) {
    const RandomCase c = MakeRandomCase(rng);
    if (!IsAcyclic(c.query)) continue;
    ++tested;
    const auto want = BruteForce<SumCost>(c.db, c.query);
    for (const AnyKAlgorithm algorithm :
         {AnyKAlgorithm::kRec, AnyKAlgorithm::kPartEager,
          AnyKAlgorithm::kPartLazy, AnyKAlgorithm::kBatch}) {
      Engine engine;
      ExecutionOptions opts;
      opts.force_algorithm = algorithm;
      auto result = engine.Execute(c.db, c.query, {}, opts);
      ASSERT_TRUE(result.ok());
      ExpectMatchesOracle(Drain(result.value().stream.get()), want,
                          /*check_costs=*/true,
                          "algorithm " +
                              std::string(AnyKAlgorithmName(algorithm)) +
                              " on query " + std::to_string(q));
    }
  }
  EXPECT_GE(tested, 10u);
}

}  // namespace
}  // namespace topkjoin
