#include "src/anyk/anyk.h"

#include "src/anyk/tree_pipeline.h"
#include "src/ranking/cost_model.h"

namespace topkjoin {

const char* AnyKAlgorithmName(AnyKAlgorithm algorithm) {
  switch (algorithm) {
    case AnyKAlgorithm::kRec:
      return "anyk-rec";
    case AnyKAlgorithm::kPartEager:
      return "anyk-part-eager";
    case AnyKAlgorithm::kPartLazy:
      return "anyk-part-lazy";
    case AnyKAlgorithm::kPartTake2:
      return "anyk-part-take2";
    case AnyKAlgorithm::kPartMemoized:
      return "anyk-part-memoized";
    case AnyKAlgorithm::kBatch:
      return "batch-sort";
  }
  return "unknown";
}

const char* AnyKPartVariantName(AnyKPartVariant variant) {
  switch (variant) {
    case AnyKPartVariant::kEager:
      return "eager";
    case AnyKPartVariant::kLazy:
      return "lazy";
    case AnyKPartVariant::kTake2:
      return "take2";
    case AnyKPartVariant::kMemoized:
      return "memoized";
  }
  return "unknown";
}

AnyKAlgorithm AlgorithmForVariant(AnyKPartVariant variant) {
  switch (variant) {
    case AnyKPartVariant::kEager:
      return AnyKAlgorithm::kPartEager;
    case AnyKPartVariant::kLazy:
      return AnyKAlgorithm::kPartLazy;
    case AnyKPartVariant::kTake2:
      return AnyKAlgorithm::kPartTake2;
    case AnyKPartVariant::kMemoized:
      return AnyKAlgorithm::kPartMemoized;
  }
  return AnyKAlgorithm::kPartTake2;
}

std::unique_ptr<RankedIterator> MakeAnyK(const Database& db,
                                         const ConjunctiveQuery& query,
                                         AnyKAlgorithm algorithm,
                                         JoinStats* stats) {
  return MakeTreeIterator<SumCost>(db, query, algorithm, stats);
}

}  // namespace topkjoin
