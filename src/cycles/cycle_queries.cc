#include "src/cycles/cycle_queries.h"

#include <algorithm>

#include "src/data/hash_index.h"
#include "src/util/common.h"

namespace topkjoin {

ConjunctiveQuery CycleQuery(RelationId edge_relation, size_t length) {
  TOPKJOIN_CHECK(length >= 3);
  ConjunctiveQuery q;
  for (size_t i = 0; i < length; ++i) {
    q.AddAtom(edge_relation,
              {static_cast<VarId>(i),
               static_cast<VarId>((i + 1) % length)});
  }
  return q;
}

AtomGrouping CycleArcGrouping(size_t length) {
  TOPKJOIN_CHECK(length >= 3);
  AtomGrouping g;
  g.groups.resize(2);
  const size_t half = length / 2;
  for (size_t i = 0; i < length; ++i) {
    g.groups[i < half ? 0 : 1].push_back(i);
  }
  return g;
}

namespace {

void ExtendCycle(const Relation& edges, const HashIndex& by_src,
                 size_t length, std::vector<RowId>& rows,
                 CycleListing* out) {
  const size_t depth = rows.size();
  if (depth == length) {
    // Close the cycle: last edge's dst must equal first edge's src.
    if (edges.At(rows.back(), 1) != edges.At(rows.front(), 0)) return;
    std::vector<Value> nodes(length);
    double weight = 0.0;
    for (size_t i = 0; i < length; ++i) {
      nodes[i] = edges.At(rows[i], 0);
      weight += edges.TupleWeight(rows[i]);
    }
    out->nodes.push_back(std::move(nodes));
    out->weights.push_back(weight);
    return;
  }
  const Value from = edges.At(rows.back(), 1);
  const Value key[] = {from};
  for (RowId next : by_src.Probe(key)) {
    rows.push_back(next);
    ExtendCycle(edges, by_src, length, rows, out);
    rows.pop_back();
  }
}

}  // namespace

CycleListing BruteForceCycles(const Relation& edges, size_t length) {
  TOPKJOIN_CHECK(edges.arity() == 2);
  CycleListing out;
  HashIndex by_src(edges, {0});
  std::vector<RowId> rows;
  for (RowId first = 0; first < edges.NumTuples(); ++first) {
    rows = {first};
    ExtendCycle(edges, by_src, length, rows, &out);
  }
  return out;
}

}  // namespace topkjoin
