// The paper's introductory example: the top-k lightest 4-cycles of a
// weighted graph, now served by the unified engine. The planner detects
// the 4-cycle shape and routes it through the union-of-acyclic-plans
// (mini-PANDA) decomposition, so preprocessing stays O~(n^{1.5}) instead
// of the O~(n^2) of full worst-case-optimal enumeration.
//
//   ./build/top_four_cycles [num_nodes] [num_edges] [k]
#include <cstdio>
#include <cstdlib>

#include "src/cycles/fourcycle.h"
#include "src/engine/engine.h"
#include "src/graph/graph_generators.h"
#include "src/join/join_stats.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

using namespace topkjoin;

int main(int argc, char** argv) {
  const Value num_nodes = argc > 1 ? std::atoll(argv[1]) : 300;
  const size_t num_edges =
      argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 2500;
  const size_t k = argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 10;

  Rng rng(2020);
  Graph g = GnmRandomGraph(num_nodes, num_edges, rng);
  // Plant three very light 4-cycles so the top of the ranking is known.
  g = PlantFourCycles(std::move(g), 3, 0.0, 0.01, rng);

  Database db;
  const RelationId e = db.Add(g.ToRelation());
  const ConjunctiveQuery q = FourCycleQuery(e);

  Timer timer;
  JoinStats stats;
  const int64_t total = CountFourCycles(db, q, &stats);
  std::printf("graph: %lld nodes, %zu edges; %lld directed 4-cycles\n",
              static_cast<long long>(g.NumNodes()), g.NumEdges(),
              static_cast<long long>(total));
  std::printf("counted in %.1f ms via the heavy/light case plans "
              "(%lld bag tuples materialized)\n",
              timer.ElapsedSeconds() * 1e3,
              static_cast<long long>(stats.intermediate_tuples));

  // The engine plans the cyclic query; the plan it chose (heavy/light
  // union routing) is part of the execution result.
  Engine engine;
  ExecutionOptions opts;
  opts.k = k;
  timer.Restart();
  auto result = engine.Execute(db, q, {}, opts);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().message().c_str());
    return 1;
  }
  std::printf("\n%s\n", result.value().plan.DebugString().c_str());
  std::printf("top-%zu lightest 4-cycles:\n", k);
  for (size_t i = 0; i < k; ++i) {
    const auto r = result.value().stream->Next();
    if (!r.has_value()) break;
    std::printf("  #%zu  %lld -> %lld -> %lld -> %lld  weight %.4f\n",
                i + 1, static_cast<long long>(r->assignment[0]),
                static_cast<long long>(r->assignment[1]),
                static_cast<long long>(r->assignment[2]),
                static_cast<long long>(r->assignment[3]), r->cost);
  }
  std::printf("top-%zu streamed in %.1f ms (no full enumeration; "
              "preprocessing: %lld bag tuples)\n",
              k, timer.ElapsedSeconds() * 1e3,
              static_cast<long long>(
                  result.value().preprocessing.intermediate_tuples));
  return 0;
}
