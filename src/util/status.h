// Minimal Status/StatusOr for exception-free error propagation.
#ifndef TOPKJOIN_UTIL_STATUS_H_
#define TOPKJOIN_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "src/util/common.h"

namespace topkjoin {

/// A lightweight success/error result. Errors carry a human-readable
/// message; there is deliberately no error-code taxonomy because callers
/// in this library never branch on the kind of failure.
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}       // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    TOPKJOIN_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TOPKJOIN_CHECK(ok());
    return value_;
  }
  T& value() & {
    TOPKJOIN_CHECK(ok());
    return value_;
  }
  T&& value() && {
    TOPKJOIN_CHECK(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace topkjoin

#endif  // TOPKJOIN_UTIL_STATUS_H_
