// Naive nested-loop evaluation: the differential-testing oracle.
#ifndef TOPKJOIN_JOIN_NESTED_LOOP_H_
#define TOPKJOIN_JOIN_NESTED_LOOP_H_

#include "src/data/database.h"
#include "src/join/result.h"
#include "src/query/cq.h"

namespace topkjoin {

/// Evaluates the query by trying every combination of one tuple per atom
/// and keeping the consistent ones. Exponential in query size and input
/// size; use only on small instances (tests). Bag semantics: duplicate
/// input tuples yield duplicate outputs. Weight of an output = sum of
/// the participating tuples' weights.
Relation NestedLoopJoin(const Database& db, const ConjunctiveQuery& query);

}  // namespace topkjoin

#endif  // TOPKJOIN_JOIN_NESTED_LOOP_H_
