// E5 -- Section 2, RAM-model critique of rank joins: HRJN shines when
// the winners sit near the top of each input, but (a) adversarial
// bottom-winner placement forces it to read and BUFFER everything, and
// (b) its buffered tuples are intermediate results that the middleware
// cost model never charged for. J*'s loose per-relation bounds keep a
// large frontier alive where any-k's exact DP bounds do not (E6).
//
// Expected shape: friendly instances read a tiny prefix; adversarial
// read 100% and buffer ~2n tuples; rank-join on the triangle query
// buffers far more than the output warrants.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/anyk/anyk.h"
#include "src/data/generators.h"
#include "src/topk/jstar.h"
#include "src/topk/rank_join.h"
#include "src/util/rng.h"

namespace topkjoin::bench {
namespace {

constexpr size_t kTopK = 10;

// Friendly: uniform weights; light results exist among light inputs.
Instance FriendlyTwoWay(size_t n, uint64_t seed) {
  Instance t;
  Rng rng(seed);
  const RelationId r = t.db.Add(
      UniformBinaryRelation("R", n, static_cast<Value>(n / 10), rng));
  const RelationId s = t.db.Add(
      UniformBinaryRelation("S", n, static_cast<Value>(n / 10), rng));
  t.query.AddAtom(r, {0, 1});
  t.query.AddAtom(s, {1, 2});
  return t;
}

// Adversarial: the only joinable pair carries the heaviest weights.
Instance BottomWinner(size_t n) {
  Instance t;
  Relation r = Relation::WithArity("R", 2);
  Relation s = Relation::WithArity("S", 2);
  for (size_t i = 0; i < n; ++i) {
    r.AddTuple({static_cast<Value>(i), static_cast<Value>(100000 + i)},
               1e-4 * static_cast<double>(i));
    s.AddTuple({static_cast<Value>(200000 + i), static_cast<Value>(i)},
               1e-4 * static_cast<double>(i));
  }
  r.AddTuple({1, 99999}, 50.0);
  s.AddTuple({99999, 2}, 50.0);
  const RelationId rid = t.db.Add(std::move(r));
  const RelationId sid = t.db.Add(std::move(s));
  t.query.AddAtom(rid, {0, 1});
  t.query.AddAtom(sid, {1, 2});
  return t;
}

void BM_HrjnFriendly(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Instance t = FriendlyTwoWay(n, 7);
  int64_t read = 0, buffered = 0;
  for (auto _ : state) {
    RankJoinPlan plan(t.db, t.query, {0, 1});
    for (size_t i = 0; i < kTopK; ++i) {
      if (!plan.Next().has_value()) break;
    }
    read = plan.TotalTuplesRead();
    buffered = plan.TotalBuffered();
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["read"] = static_cast<double>(read);
  state.counters["buffered"] = static_cast<double>(buffered);
}

void BM_HrjnBottomWinner(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Instance t = BottomWinner(n);
  int64_t read = 0, buffered = 0;
  for (auto _ : state) {
    RankJoinPlan plan(t.db, t.query, {0, 1});
    (void)plan.Next();  // top-1 requires full depth
    read = plan.TotalTuplesRead();
    buffered = plan.TotalBuffered();
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["read"] = static_cast<double>(read);
  state.counters["buffered"] = static_cast<double>(buffered);
}

void BM_HrjnCyclicTriangle(benchmark::State& state) {
  // Rank join on the AGM-hard triangle: buffered intermediates blow up
  // quadratically even for small k -- the paper's point that top-k
  // algorithms were never charged for intermediate results.
  const auto n = static_cast<size_t>(state.range(0));
  Instance t = AgmHardTriangle(n, 9);
  int64_t read = 0, buffered = 0;
  for (auto _ : state) {
    RankJoinPlan plan(t.db, t.query, {0, 1, 2});
    for (size_t i = 0; i < kTopK; ++i) {
      if (!plan.Next().has_value()) break;
    }
    read = plan.TotalTuplesRead();
    buffered = plan.TotalBuffered();
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["read"] = static_cast<double>(read);
  state.counters["buffered"] = static_cast<double>(buffered);
}

void BM_JStarPathTopK(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Instance t = FriendlyTwoWay(n, 7);
  int64_t frontier = 0;
  for (auto _ : state) {
    JStar js(t.db, t.query, {0, 1});
    for (size_t i = 0; i < kTopK; ++i) {
      if (!js.Next().has_value()) break;
    }
    frontier = js.FrontierSize();
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["frontier"] = static_cast<double>(frontier);
}

void BM_AnyKPathTopK(benchmark::State& state) {
  // The any-k contrast on the identical workload.
  const auto n = static_cast<size_t>(state.range(0));
  Instance t = FriendlyTwoWay(n, 7);
  for (auto _ : state) {
    auto it = MakeAnyK(t.db, t.query, AnyKAlgorithm::kPartLazy);
    for (size_t i = 0; i < kTopK; ++i) {
      if (!it->Next().has_value()) break;
    }
  }
  state.counters["n"] = static_cast<double>(n);
}

BENCHMARK(BM_HrjnFriendly)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HrjnBottomWinner)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HrjnCyclicTriangle)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JStarPathTopK)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnyKPathTopK)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace topkjoin::bench

BENCHMARK_MAIN();
