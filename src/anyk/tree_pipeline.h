// The single dispatch table from (cost model, AnyKAlgorithm) to a
// self-contained ranked-enumeration pipeline. Both the SUM-only
// convenience factory (anyk/anyk.cc) and the engine executor
// (engine/executor.cc) build trees through here, so algorithm/SortMode
// pairings live in exactly one place.
#ifndef TOPKJOIN_ANYK_TREE_PIPELINE_H_
#define TOPKJOIN_ANYK_TREE_PIPELINE_H_

#include <memory>
#include <utility>

#include "src/anyk/anyk.h"
#include "src/anyk/anyk_part.h"
#include "src/anyk/anyk_rec.h"
#include "src/anyk/batch.h"
#include "src/anyk/ranked_iterator.h"
#include "src/anyk/tdp.h"
#include "src/data/database.h"
#include "src/join/join_stats.h"
#include "src/obs/metrics.h"
#include "src/query/cq.h"
#include "src/query/decomposition.h"

namespace topkjoin {

/// Owns a copy of the query, the T-DP, and the algorithm running over
/// it. The T-DP keeps a pointer to the query, so the copy must live
/// here; the database is only read during Tdp construction -- the
/// pipeline outlives both caller arguments.
template <typename CM, typename Algo>
class TreePipeline : public RankedIterator {
 public:
  /// `atom_weights` (optional, only read during construction) carries
  /// per-tuple member-weight sequences for materialized bag atoms; the
  /// T-DP folds them into exact dioid costs (see Tdp).
  TreePipeline(const Database& db, ConjunctiveQuery query, SortMode mode,
               JoinStats* stats,
               const std::vector<WeightMatrix>* atom_weights = nullptr)
      : query_(std::move(query)),
        build_start_(FastClock::Now()),
        tdp_(db, query_, mode, stats, atom_weights),
        algo_(&tdp_) {
    if constexpr (kMetricsEnabled) {
      // T-DP preprocessing metrics, recorded once per pipeline. The
      // metric objects are process-wide, so repeated builds aggregate.
      auto& registry = MetricsRegistry::Global();
      registry.GetHistogram("tdp.build_ns")
          ->RecordTicksAsNs(FastClock::Now() - build_start_);
      registry.GetHistogram("tdp.arena_bytes")->Record(tdp_.ApproxBytes());
      registry.GetHistogram("tdp.groups")->Record(tdp_.NumGroups());
      registry.GetCounter("tdp.builds")->Increment();
    }
  }

  std::optional<RankedResult> Next() override { return algo_.Next(); }

  int64_t WorkUnits() const override {
    return algo_.heap_extractions() + algo_.pq_pushes();
  }

  PipelineCounters Counters() const override {
    PipelineCounters counters;
    counters.frontier_pushes = algo_.pq_pushes();
    counters.heap_extractions = algo_.heap_extractions();
    if constexpr (requires(const Algo& a) { a.peak_candidate_bytes(); }) {
      counters.candidate_pool_bytes =
          static_cast<int64_t>(algo_.peak_candidate_bytes());
    }
    return counters;
  }

 private:
  ConjunctiveQuery query_;
  FastClock::Ticks build_start_;  // declared before tdp_: times its build
  Tdp<CM> tdp_;
  Algo algo_;
};

/// Builds the chosen algorithm over a fresh T-DP for an acyclic query,
/// under any cost-model policy.
template <typename CM>
std::unique_ptr<RankedIterator> MakeTreeIterator(
    const Database& db, const ConjunctiveQuery& query,
    AnyKAlgorithm algorithm, JoinStats* stats,
    const std::vector<WeightMatrix>* atom_weights = nullptr) {
  switch (algorithm) {
    case AnyKAlgorithm::kRec:
      return std::make_unique<TreePipeline<CM, AnyKRec<CM>>>(
          db, query, SortMode::kLazy, stats, atom_weights);
    case AnyKAlgorithm::kPartEager:
      return std::make_unique<
          TreePipeline<CM, AnyKPart<CM, PartStrategy::kLawler>>>(
          db, query, SortMode::kEager, stats, atom_weights);
    case AnyKAlgorithm::kPartLazy:
      return std::make_unique<
          TreePipeline<CM, AnyKPart<CM, PartStrategy::kLawler>>>(
          db, query, SortMode::kLazy, stats, atom_weights);
    case AnyKAlgorithm::kPartTake2:
      return std::make_unique<
          TreePipeline<CM, AnyKPart<CM, PartStrategy::kTake2>>>(
          db, query, SortMode::kLazy, stats, atom_weights);
    case AnyKAlgorithm::kPartMemoized:
      return std::make_unique<
          TreePipeline<CM, AnyKPart<CM, PartStrategy::kTake2>>>(
          db, query, SortMode::kQuickselect, stats, atom_weights);
    case AnyKAlgorithm::kBatch:
      return std::make_unique<TreePipeline<CM, BatchSorted<CM>>>(
          db, query, SortMode::kEager, stats, atom_weights);
  }
  return nullptr;
}

/// Owns the bag database of a decomposed (cyclic) query together with
/// the tree pipeline enumerating it -- the holder shape both the
/// 4-cycle case plans and generic bag decompositions need. The bag
/// weight matrices ride into the T-DP, so the pipeline ranks exactly
/// under CM even when CM is not the additive dioid the bags' scalar
/// weights were combined with.
template <typename CM>
class BagPipeline : public RankedIterator {
 public:
  BagPipeline(DecomposedQuery dq, AnyKAlgorithm algorithm, JoinStats* stats)
      : dq_(std::move(dq)),
        inner_(MakeTreeIterator<CM>(dq_.db, dq_.query, algorithm, stats,
                                    &dq_.bag_weights)) {}

  std::optional<RankedResult> Next() override { return inner_->Next(); }

  int64_t WorkUnits() const override { return inner_->WorkUnits(); }

  PipelineCounters Counters() const override { return inner_->Counters(); }

 private:
  DecomposedQuery dq_;
  std::unique_ptr<RankedIterator> inner_;
};

}  // namespace topkjoin

#endif  // TOPKJOIN_ANYK_TREE_PIPELINE_H_
