// The pre-rewrite ANYK-PART enumerator, kept verbatim as the measured
// baseline for bench_e13_anyk_core and the frontier-push regression
// guard. Production pipelines use the pooled engine in anyk_part.h;
// nothing outside the bench and its pin tests should include this file.
//
// What makes it the "legacy Lawler expansion": every popped solution
// generates up to one successor per serialized position (ell pushes per
// result), each successor deep-copies the full index vector, the popped
// top is deep-copied out of priority_queue::top() (choice + indices +
// cost vector), and the frontier stores fat candidates by value.
#ifndef TOPKJOIN_ANYK_ANYK_PART_LEGACY_H_
#define TOPKJOIN_ANYK_ANYK_PART_LEGACY_H_

#include <algorithm>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "src/anyk/ranked_iterator.h"
#include "src/anyk/tdp.h"

namespace topkjoin {

template <typename CM>
class LegacyAnyKPart : public RankedIterator {
 public:
  using CostT = typename CM::CostT;

  explicit LegacyAnyKPart(const Tdp<CM>* tdp) : tdp_(tdp) {
    if (!tdp_.HasResults()) return;
    // Seed: the optimal solution (index 0 everywhere).
    Candidate seed;
    seed.indices.assign(tdp_.NumNodes(), 0);
    seed.dev_pos = 0;
    TOPKJOIN_CHECK(Evaluate(&seed));
    frontier_.push(std::move(seed));
    ++pq_pushes_;
    peak_frontier_ = 1;
  }

  std::optional<RankedResult> Next() override {
    auto r = NextWithCost();
    if (!r.has_value()) return std::nullopt;
    RankedResult out;
    out.assignment = std::move(r->first);
    out.cost = CM::ToDouble(r->second);
    out.cost_vector = CM::Components(r->second);
    return out;
  }

  std::optional<std::pair<std::vector<Value>, CostT>> NextWithCost() {
    if (frontier_.empty()) return std::nullopt;
    Candidate top = frontier_.top();  // the deep copy the rewrite removed
    frontier_.pop();
    // Lawler expansion: bump every position >= the popped solution's
    // deviation position.
    for (size_t j = top.dev_pos; j < tdp_.NumNodes(); ++j) {
      Candidate succ;
      succ.indices.assign(top.indices.begin(),
                          top.indices.begin() + static_cast<ptrdiff_t>(j + 1));
      succ.indices.resize(tdp_.NumNodes(), 0);
      ++succ.indices[j];
      succ.dev_pos = j;
      if (Evaluate(&succ)) {
        frontier_.push(std::move(succ));
        ++pq_pushes_;
      }
    }
    peak_frontier_ = std::max(peak_frontier_, frontier_.size());
    std::pair<std::vector<Value>, CostT> out;
    tdp_.AssignmentOf(top.choice, &out.first);
    out.second = std::move(top.cost);
    return out;
  }

  int64_t pq_pushes() const { return pq_pushes_; }
  int64_t heap_extractions() const { return tdp_.heap_extractions(); }

  int64_t WorkUnits() const override {
    return tdp_.heap_extractions() + pq_pushes_;
  }

  /// Approximate peak frontier footprint, modeling what the process
  /// actually holds: the priority queue's backing vector grows by
  /// doubling (capacity = next power of two above the high-water
  /// element count, sizeof(Candidate) each), and every live candidate
  /// owns two heap blocks (indices + choice) whose small payloads round
  /// up to the allocator's minimum chunk (16-byte header + alignment;
  /// 32 bytes for the few-element vectors of typical queries).
  /// Comparable with the pooled engine's capacity-exact
  /// peak_candidate_bytes().
  size_t peak_candidate_bytes() const {
    size_t cap = 1;
    while (cap < peak_frontier_) cap <<= 1;
    const size_t chunk = [](size_t payload) {
      return (payload + 16 + 15) / 16 * 16;  // header + 16B alignment
    }(tdp_.NumNodes() * sizeof(uint32_t));
    const size_t chunk2 = [](size_t payload) {
      return (payload + 16 + 15) / 16 * 16;
    }(tdp_.NumNodes() * sizeof(RowId));
    return cap * sizeof(Candidate) + peak_frontier_ * (chunk + chunk2);
  }

 private:
  struct Candidate {
    std::vector<uint32_t> indices;  // per node: rank within its group
    std::vector<RowId> choice;      // resolved tuples (filled by Evaluate)
    size_t dev_pos = 0;
    CostT cost = CM::Identity();
  };

  struct CandidateOrder {
    bool operator()(const Candidate& a, const Candidate& b) const {
      return CM::Less(b.cost, a.cost);  // min-queue
    }
  };

  // Resolves indices to tuples by walking the tree in preorder (node i's
  // parent has a smaller index, so its tuple -- and hence node i's group
  // -- is known by the time we reach i). Returns false when some index
  // is out of range for its group. Fills choice and exact cost.
  bool Evaluate(Candidate* cand) {
    const size_t num_nodes = tdp_.NumNodes();
    cand->choice.resize(num_nodes);
    groups_buffer_.resize(num_nodes);
    groups_buffer_[0] = tdp_.RootGroup();
    CostT cost = CM::Identity();
    for (size_t i = 0; i < num_nodes; ++i) {
      const auto& node = tdp_.node(i);
      RowId row = 0;
      if (!tdp_.GroupTuple(i, groups_buffer_[i], cand->indices[i], &row)) {
        return false;
      }
      cand->choice[i] = row;
      cost = CM::Combine(cost, tdp_.TupleCost(i, row));
      for (size_t ci = 0; ci < node.children.size(); ++ci) {
        groups_buffer_[node.children[ci]] = node.child_group(row, ci);
      }
    }
    cand->cost = std::move(cost);
    return true;
  }

  TdpCursor<CM> tdp_;
  std::priority_queue<Candidate, std::vector<Candidate>, CandidateOrder>
      frontier_;
  std::vector<GroupId> groups_buffer_;
  int64_t pq_pushes_ = 0;
  size_t peak_frontier_ = 0;
};

}  // namespace topkjoin

#endif  // TOPKJOIN_ANYK_ANYK_PART_LEGACY_H_
