// Weighted DAGs for k-shortest-path enumeration.
//
// Part 3 of the paper traces the two any-k techniques back to k-shortest
// paths: the Lawler-Murty partitioning procedure (Lawler 1972, Murty
// 1968, Hoffman-Pavley 1959) and the Recursive Enumeration Algorithm
// lineage (Bellman-Kalaba 1960, Dreyfus 1969, Jimenez-Marzal 1999).
// This module implements both on an explicit DAG, serving as (a) a
// standalone example, (b) a differential-testing oracle for the join
// any-k engines (a serial path query IS a k-shortest-path instance).
#ifndef TOPKJOIN_KSHORTEST_DAG_H_
#define TOPKJOIN_KSHORTEST_DAG_H_

#include <cstdint>
#include <vector>

#include "src/util/common.h"

namespace topkjoin {

/// A directed acyclic graph with weighted edges. Node ids are dense in
/// [0, num_nodes). Edges may be added in any order; algorithms verify
/// acyclicity via topological sort.
class Dag {
 public:
  explicit Dag(size_t num_nodes) : adj_(num_nodes) {}

  void AddEdge(size_t from, size_t to, double weight) {
    TOPKJOIN_CHECK(from < adj_.size() && to < adj_.size());
    adj_[from].push_back({to, weight});
  }

  size_t NumNodes() const { return adj_.size(); }

  struct Arc {
    size_t to = 0;
    double weight = 0.0;
  };
  const std::vector<Arc>& OutArcs(size_t node) const { return adj_[node]; }

  /// Topological order; CHECK-fails when the graph has a cycle.
  std::vector<size_t> TopologicalOrder() const;

 private:
  std::vector<std::vector<Arc>> adj_;
};

/// A path as a node sequence plus its total weight.
struct WeightedPath {
  std::vector<size_t> nodes;
  double weight = 0.0;
};

}  // namespace topkjoin

#endif  // TOPKJOIN_KSHORTEST_DAG_H_
