// Hash index on a subset of a relation's columns: composite key -> rows.
#ifndef TOPKJOIN_DATA_HASH_INDEX_H_
#define TOPKJOIN_DATA_HASH_INDEX_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "src/data/relation.h"
#include "src/util/hash.h"

namespace topkjoin {

/// Equi-join index: maps the projection of each tuple onto `key_columns`
/// to the list of matching row ids. Build cost and probe counts are
/// exposed for RAM-model accounting.
class HashIndex {
 public:
  /// Builds the index over `relation` (which must outlive the index).
  HashIndex(const Relation& relation, std::vector<size_t> key_columns);

  /// Rows whose key columns equal `key` (size = key_columns.size()).
  /// Returns an empty span when there is no match.
  std::span<const RowId> Probe(std::span<const Value> key) const;

  /// True when at least one row matches `key`.
  bool Contains(std::span<const Value> key) const {
    return !Probe(key).empty();
  }

  /// Number of distinct keys.
  size_t NumKeys() const { return buckets_.size(); }

  /// Largest bucket size (degree of the heaviest key).
  size_t MaxDegree() const { return max_degree_; }

  const std::vector<size_t>& key_columns() const { return key_columns_; }
  const Relation& relation() const { return relation_; }

 private:
  const Relation& relation_;
  std::vector<size_t> key_columns_;
  std::unordered_map<ValueKey, std::vector<RowId>, ValueKeyHash> buckets_;
  size_t max_degree_ = 0;
};

}  // namespace topkjoin

#endif  // TOPKJOIN_DATA_HASH_INDEX_H_
