// Deterministic pseudo-random number generation (xoshiro256**).
//
// All synthetic workload generators take an explicit Rng so experiments
// are reproducible from a seed, as the benchmarking methodology in the
// reproduced paper's companion experiments requires.
#ifndef TOPKJOIN_UTIL_RNG_H_
#define TOPKJOIN_UTIL_RNG_H_

#include <cstdint>

#include "src/util/common.h"

namespace topkjoin {

/// xoshiro256** generator. Not cryptographic; fast and high quality for
/// simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be positive.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

 private:
  uint64_t state_[4];
};

}  // namespace topkjoin

#endif  // TOPKJOIN_UTIL_RNG_H_
