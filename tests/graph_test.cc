// Tests for graph/: graph <-> relation conversion, pattern builders,
// and generators.
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/generators.h"
#include "src/graph/graph.h"
#include "src/graph/graph_generators.h"
#include "src/graph/patterns.h"
#include "src/join/nested_loop.h"
#include "src/query/hypergraph.h"
#include "src/util/rng.h"

namespace topkjoin {
namespace {

TEST(GraphTest, BasicEdgeAccounting) {
  Graph g;
  g.AddEdge(0, 1, 0.5);
  g.AddEdge(1, 2, 0.25);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.NumNodes(), 3);
  const Relation rel = g.ToRelation("E");
  EXPECT_EQ(rel.NumTuples(), 2u);
  EXPECT_EQ(rel.At(0, 0), 0);
  EXPECT_DOUBLE_EQ(rel.TupleWeight(1), 0.25);
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumNodes(), 0);
  EXPECT_TRUE(g.ToRelation().Empty());
}

TEST(PatternsTest, PathStarTriangleShapes) {
  const auto path = PathPatternQuery(0, 3);
  EXPECT_EQ(path.NumAtoms(), 3u);
  EXPECT_EQ(path.num_vars(), 4);
  EXPECT_TRUE(IsAcyclic(path));

  const auto star = StarPatternQuery(0, 4);
  EXPECT_EQ(star.NumAtoms(), 4u);
  EXPECT_EQ(star.num_vars(), 5);
  EXPECT_TRUE(IsAcyclic(star));

  const auto tri = TrianglePatternQuery(0);
  EXPECT_EQ(tri.NumAtoms(), 3u);
  EXPECT_FALSE(IsAcyclic(tri));
}

TEST(PatternsTest, TriangleQueryFindsPlantedTriangle) {
  Graph g;
  g.AddEdge(0, 1, 0.1);
  g.AddEdge(1, 2, 0.2);
  g.AddEdge(2, 0, 0.3);
  g.AddEdge(3, 4, 0.4);  // noise
  Database db;
  const RelationId e = db.Add(g.ToRelation());
  const Relation out = NestedLoopJoin(db, TrianglePatternQuery(e));
  // The planted triangle appears once per rotation.
  EXPECT_EQ(out.NumTuples(), 3u);
}

TEST(GeneratorsTest, GnmHasExactEdgeCountAndNoDuplicates) {
  Rng rng(3);
  const Graph g = GnmRandomGraph(50, 300, rng);
  EXPECT_EQ(g.NumEdges(), 300u);
  std::set<std::pair<Value, Value>> seen;
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_TRUE(seen.emplace(e.src, e.dst).second) << "duplicate edge";
  }
}

TEST(GeneratorsTest, SkewedGraphHasHub) {
  Rng rng(4);
  const Graph g = SkewedGraph(500, 4000, 1.2, rng);
  size_t hub_degree = 0;
  for (const Edge& e : g.edges()) hub_degree += (e.src == 0);
  EXPECT_GT(hub_degree, 200u);  // Zipf rank 0 dominates
}

TEST(GeneratorsTest, PlantedCyclesAreFound) {
  Rng rng(5);
  Graph base = AcyclicLayeredGraph(100, 200, rng);
  const size_t base_edges = base.NumEdges();
  const Graph g = PlantFourCycles(std::move(base), 3, 0.0, 0.1, rng);
  EXPECT_EQ(g.NumEdges(), base_edges + 12);
  // Planted nodes are fresh, so each planted cycle is disjoint: count
  // via brute force over the relation.
  Database db;
  const RelationId e = db.Add(g.ToRelation());
  ConjunctiveQuery q;
  q.AddAtom(e, {0, 1});
  q.AddAtom(e, {1, 2});
  q.AddAtom(e, {2, 3});
  q.AddAtom(e, {3, 0});
  // 3 cycles x 4 rotations.
  EXPECT_EQ(NestedLoopJoin(db, q).NumTuples(), 12u);
}

TEST(GeneratorsTest, LayeredGraphHasNoDirectedCycle) {
  Rng rng(6);
  const Graph g = AcyclicLayeredGraph(80, 400, rng);
  for (const Edge& e : g.edges()) EXPECT_LT(e.src, e.dst);
}

}  // namespace
}  // namespace topkjoin
