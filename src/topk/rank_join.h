// Rank join: HRJN / HRJN* (Ilyas, Aref, Elmagarmid, VLDB J. 2004) --
// the classic top-k join operator over inputs pre-sorted by score
// (Section 2 of the paper).
//
// We use MIN-SUM semantics throughout (lighter is better), matching the
// paper's top-k lightest patterns. A binary HRJN operator pulls from two
// ranked inputs, buffers everything it has read (hash-partitioned on the
// join key), emits buffered join results from a priority queue, and
// stops pulling when the queue's best result is at most the threshold --
// a lower bound on any result involving a yet-unread input tuple:
//     T = min( L.next + Rmin , Lmin + R.next ).
// The operators compose into left-deep trees for multiway queries.
//
// The paper's RAM-model critique is visible in the exposed statistics:
// the buffered tuples ARE intermediate results, and on adversarial
// inputs (winners at the bottom) or cyclic queries they blow up --
// experiment E5.
#ifndef TOPKJOIN_TOPK_RANK_JOIN_H_
#define TOPKJOIN_TOPK_RANK_JOIN_H_

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/data/database.h"
#include "src/query/cq.h"

namespace topkjoin {

/// One ranked (ascending-cost) output tuple of a rank-join operator.
struct RankedTuple {
  std::vector<Value> values;  // aligned with the source's vars()
  double cost = 0.0;
};

/// Pull-based ranked stream over a fixed variable list.
class RankedSource {
 public:
  virtual ~RankedSource() = default;
  virtual const std::vector<VarId>& vars() const = 0;
  /// Next output in non-decreasing cost order.
  virtual std::optional<RankedTuple> Next() = 0;
  /// Lower bound on the cost of any output not yet returned by Next()
  /// (including internally buffered ones); +infinity when exhausted.
  virtual double NextLowerBound() = 0;
};

/// Leaf: scans a relation in ascending weight order.
class RelationScanSource : public RankedSource {
 public:
  RelationScanSource(const Relation& relation, std::vector<VarId> vars);
  const std::vector<VarId>& vars() const override { return vars_; }
  std::optional<RankedTuple> Next() override;
  double NextLowerBound() override;

  /// Sorted depth reached (tuples read) -- the classic rank-join metric.
  int64_t tuples_read() const { return static_cast<int64_t>(pos_); }

 private:
  const Relation& relation_;
  std::vector<VarId> vars_;
  std::vector<RowId> order_;  // rows sorted by weight ascending
  size_t pos_ = 0;
};

/// Binary HRJN operator; owns its two inputs.
class HrjnOperator : public RankedSource {
 public:
  HrjnOperator(std::unique_ptr<RankedSource> left,
               std::unique_ptr<RankedSource> right);
  ~HrjnOperator() override;

  const std::vector<VarId>& vars() const override;
  std::optional<RankedTuple> Next() override;
  double NextLowerBound() override;

  /// Tuples currently buffered on both sides (intermediate state).
  int64_t buffered_tuples() const;
  /// Results sitting in the output queue (also intermediate state).
  int64_t queued_results() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A left-deep tree of HRJN operators for a full CQ (atom order as
/// given). Works for cyclic queries too -- join conditions accumulate on
/// the left input. Exposes plan-wide statistics.
class RankJoinPlan {
 public:
  RankJoinPlan(const Database& db, const ConjunctiveQuery& query,
               const std::vector<size_t>& atom_order);
  ~RankJoinPlan();

  /// Next result in ascending total weight: assignment indexed by VarId.
  std::optional<std::pair<std::vector<Value>, double>> Next();

  /// Total base-relation tuples read so far across all leaves ("depth").
  int64_t TotalTuplesRead() const;
  /// Total tuples buffered inside all HRJN operators right now.
  int64_t TotalBuffered() const;

 private:
  const ConjunctiveQuery* query_;
  std::unique_ptr<RankedSource> root_;
  std::vector<RelationScanSource*> leaves_;    // owned by the tree
  std::vector<HrjnOperator*> operators_;       // owned by the tree
};

}  // namespace topkjoin

#endif  // TOPKJOIN_TOPK_RANK_JOIN_H_
