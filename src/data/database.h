// A catalog of named relations. Atoms of a conjunctive query reference
// relations by index into a Database, which supports self-joins naturally
// (two atoms may reference the same relation, as in the paper's
// graph-pattern queries expressed as self-joins of the edge set).
#ifndef TOPKJOIN_DATA_DATABASE_H_
#define TOPKJOIN_DATA_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/data/relation.h"

namespace topkjoin {

/// Index of a relation within a Database.
using RelationId = size_t;

/// Owns a set of relations. Relations are stable under addition (stored
/// via unique_ptr), so raw pointers handed out remain valid.
class Database {
 public:
  Database() = default;

  /// Moves a relation into the catalog; returns its id.
  RelationId Add(Relation relation);

  size_t NumRelations() const { return relations_.size(); }

  const Relation& relation(RelationId id) const {
    TOPKJOIN_DCHECK(id < relations_.size());
    return *relations_[id];
  }
  Relation& mutable_relation(RelationId id) {
    TOPKJOIN_DCHECK(id < relations_.size());
    // Conservative: handing out a mutable reference counts as a data
    // change (the caller may append/filter/sort through it).
    ++version_;
    return *relations_[id];
  }

  /// Monotonically increasing data version: bumped by Add and by every
  /// mutable_relation access. Cross-request caches (the serving layer's
  /// plan cache) key on (database identity, version) and treat any bump
  /// as invalidation of everything derived from the old contents.
  /// Seeded from a process-wide epoch counter, so a new Database that
  /// happens to be allocated at a freed one's address cannot replay the
  /// old object's versions (see ServingEngine::InvalidateCachedPlans
  /// for the belt-and-suspenders explicit drop).
  uint64_t version() const { return version_; }

  /// Looks up a relation by name; returns nullptr when absent.
  const Relation* Find(const std::string& name) const;

  /// Size of the largest relation ("n" in the paper's complexity bounds).
  size_t MaxRelationSize() const;

 private:
  static uint64_t NextEpochSeed();

  std::vector<std::unique_ptr<Relation>> relations_;
  uint64_t version_ = NextEpochSeed();
};

}  // namespace topkjoin

#endif  // TOPKJOIN_DATA_DATABASE_H_
