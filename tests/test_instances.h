// Shared test fixtures: the standard small random instances (path,
// star, triangle, 4-cycle) and the join-then-sort cost oracle used by
// the engine and serving test suites.
#ifndef TOPKJOIN_TESTS_TEST_INSTANCES_H_
#define TOPKJOIN_TESTS_TEST_INSTANCES_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/anyk/ranked_iterator.h"
#include "src/cycles/fourcycle.h"
#include "src/data/generators.h"
#include "src/join/nested_loop.h"
#include "src/query/cq.h"
#include "src/util/rng.h"

namespace topkjoin {
namespace testing_fixtures {

struct Instance {
  Database db;
  ConjunctiveQuery query;
};

// Q(x0..x_len) :- R0(x0,x1), ..., R_{len-1}(x_{len-1},x_len).
inline Instance MakePathInstance(size_t len, size_t tuples, Value domain,
                                 uint64_t seed) {
  Instance t;
  Rng rng(seed);
  for (size_t i = 0; i < len; ++i) {
    const RelationId id = t.db.Add(
        UniformBinaryRelation("R" + std::to_string(i), tuples, domain, rng));
    t.query.AddAtom(id, {static_cast<VarId>(i), static_cast<VarId>(i + 1)});
  }
  return t;
}

// Q(c,x1,x2,x3) :- R0(c,x1), R1(c,x2), R2(c,x3).
inline Instance MakeStarInstance(size_t tuples, Value domain, uint64_t seed) {
  Instance t;
  Rng rng(seed);
  for (int i = 0; i < 3; ++i) {
    const RelationId id = t.db.Add(
        UniformBinaryRelation("R" + std::to_string(i), tuples, domain, rng));
    t.query.AddAtom(id, {0, i + 1});
  }
  return t;
}

inline Instance MakeFourCycleInstance(size_t edges, Value domain,
                                      uint64_t seed) {
  Instance t;
  Rng rng(seed);
  const RelationId e = t.db.Add(UniformBinaryRelation("E", edges, domain, rng));
  t.query = FourCycleQuery(e);
  return t;
}

// Q(x0,x1,x2) :- R(x0,x1), S(x1,x2), T(x2,x0) -- cyclic, not 4-cycle.
inline Instance MakeTriangleInstance(size_t tuples, Value domain,
                                     uint64_t seed) {
  Instance t;
  Rng rng(seed);
  const RelationId r =
      t.db.Add(UniformBinaryRelation("R", tuples, domain, rng));
  const RelationId s =
      t.db.Add(UniformBinaryRelation("S", tuples, domain, rng));
  const RelationId w =
      t.db.Add(UniformBinaryRelation("T", tuples, domain, rng));
  t.query.AddAtom(r, {0, 1});
  t.query.AddAtom(s, {1, 2});
  t.query.AddAtom(w, {2, 0});
  return t;
}

inline std::vector<RankedResult> Drain(RankedIterator* it) {
  std::vector<RankedResult> out;
  while (auto r = it->Next()) out.push_back(std::move(*r));
  return out;
}

// Ground truth: SUM costs of the full join output, ascending.
inline std::vector<double> OracleSortedCosts(const Instance& t) {
  const Relation out = NestedLoopJoin(t.db, t.query);
  std::vector<double> costs;
  for (RowId r = 0; r < out.NumTuples(); ++r) {
    costs.push_back(out.TupleWeight(r));
  }
  std::sort(costs.begin(), costs.end());
  return costs;
}

}  // namespace testing_fixtures
}  // namespace topkjoin

#endif  // TOPKJOIN_TESTS_TEST_INSTANCES_H_
