// A fixed pool of worker threads draining a FIFO task queue.
//
// The serving layer submits Fetch slices here; FIFO order is what makes
// admission fair -- a cursor that wants another slice re-enqueues at the
// tail, so every waiting cursor gets one slice per "round" (round-robin
// without a central scheduler). The pool is deliberately minimal: no
// priorities, no stealing; fairness policy lives in the submitter.
#ifndef TOPKJOIN_SERVING_WORKER_POOL_H_
#define TOPKJOIN_SERVING_WORKER_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace topkjoin {

/// Fixed worker pool. All methods are thread-safe. With zero threads the
/// pool degrades to inline execution: Submit runs the task on the
/// calling thread -- handy for apples-to-apples single-threaded
/// baselines and for tests of the scheduling logic alone.
class WorkerPool {
 public:
  explicit WorkerPool(size_t num_threads);

  /// Drains the queue, then joins the workers. Tasks already submitted
  /// still run; do not submit during destruction.
  ~WorkerPool();

  /// Enqueues a task at the tail. Tasks may themselves call Submit
  /// (self-requeue), which is how the serving layer keeps a cursor's
  /// slices flowing while staying fair to everyone else in the queue.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until the queue is empty and every worker is idle. Note this
  /// is a transient condition: another thread may submit right after.
  void WaitIdle() EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

  /// Queued plus currently-executing tasks: the pool's instantaneous
  /// backlog. Transient by nature (submits race it); the serving layer
  /// samples it for load-shedding decisions, where an approximate
  /// answer is the point.
  size_t QueueDepth() const EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar wake_cv_;  // workers wait for tasks/shutdown
  CondVar idle_cv_;  // WaitIdle waits for quiescence
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t running_ GUARDED_BY(mu_) = 0;  // tasks currently executing
  bool shutdown_ GUARDED_BY(mu_) = false;
  // Written only by the constructor, before any concurrency exists;
  // joined by the destructor. Safe to read unlocked (num_threads).
  std::vector<std::thread> threads_;
};

}  // namespace topkjoin

#endif  // TOPKJOIN_SERVING_WORKER_POOL_H_
