// Delta descriptions for live updates.
//
// A Delta is the writer-side description of one atomic batch of tuple
// appends across relations; Database::ApplyDelta applies it under the
// commit-then-publish protocol (data/database.h). An AppendDelta is the
// log-side record of what one committed version appended to one
// relation -- enough for incremental maintainers (reservoir samples,
// T-DP artifact patching) to locate exactly the appended rows in a
// later snapshot: rows [first_row, first_row + num_rows) of `relation`.
#ifndef TOPKJOIN_DATA_DELTA_H_
#define TOPKJOIN_DATA_DELTA_H_

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "src/data/relation.h"
#include "src/util/common.h"

namespace topkjoin {

/// Index of a relation within a Database (mirrors database.h; kept here
/// too so delta.h does not need the full Database definition).
using RelationId = size_t;

/// Tuples to append to one relation: row-major values plus one weight
/// per row (`values.size() == weights.size() * arity`).
struct RelationDelta {
  RelationId relation = 0;
  std::vector<Value> values;
  std::vector<Weight> weights;

  size_t NumRows() const { return weights.size(); }

  void AddTuple(std::initializer_list<Value> tuple, Weight weight) {
    values.insert(values.end(), tuple.begin(), tuple.end());
    weights.push_back(weight);
  }
};

/// One atomic update: appends to any number of relations, committed and
/// published as a single new snapshot epoch.
struct Delta {
  std::vector<RelationDelta> relations;

  RelationDelta& ForRelation(RelationId id) {
    for (RelationDelta& rd : relations) {
      if (rd.relation == id) return rd;
    }
    RelationDelta fresh;
    fresh.relation = id;
    relations.push_back(std::move(fresh));
    return relations.back();
  }
};

/// Log record: version `to_version` appended rows
/// [first_row, first_row + num_rows) to `relation`. A reader at version
/// v_old catches up to v_new by consuming, in order, every record with
/// to_version in (v_old, v_new] (see Database::DeltasSince).
struct AppendDelta {
  uint64_t to_version = 0;
  RelationId relation = 0;
  RowId first_row = 0;
  uint32_t num_rows = 0;
};

}  // namespace topkjoin

#endif  // TOPKJOIN_DATA_DELTA_H_
