// Tests for anyk/: the T-DP substrate, ANYK-REC, ANYK-PART (eager and
// lazy), the batch baseline, the unranked constant-delay enumerator, and
// the union merger -- with differential property tests against sorting
// the nested-loop oracle's output.
#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/anyk/anyk.h"
#include "src/anyk/anyk_part.h"
#include "src/anyk/anyk_rec.h"
#include "src/anyk/batch.h"
#include "src/anyk/tdp.h"
#include "src/anyk/union_anyk.h"
#include "src/data/generators.h"
#include "src/join/nested_loop.h"
#include "src/query/decomposition.h"
#include "src/query/hypergraph.h"
#include "src/ranking/cost_model.h"
#include "src/util/rng.h"

namespace topkjoin {
namespace {

struct TestInstance {
  Database db;
  ConjunctiveQuery query;
};

TestInstance MakePathInstance(size_t len, size_t tuples, Value domain,
                              uint64_t seed) {
  TestInstance t;
  Rng rng(seed);
  for (size_t i = 0; i < len; ++i) {
    const RelationId id = t.db.Add(
        UniformBinaryRelation("R" + std::to_string(i), tuples, domain, rng));
    t.query.AddAtom(id, {static_cast<VarId>(i), static_cast<VarId>(i + 1)});
  }
  return t;
}

TestInstance MakeStarInstance(size_t tuples, Value domain, uint64_t seed) {
  TestInstance t;
  Rng rng(seed);
  for (int i = 0; i < 3; ++i) {
    const RelationId id = t.db.Add(
        UniformBinaryRelation("S" + std::to_string(i), tuples, domain, rng));
    t.query.AddAtom(id, {0, i + 1});
  }
  return t;
}

// Bushy tree: R(x0,x1), S(x1,x2), T(x1,x3), U(x3,x4).
TestInstance MakeBushyInstance(size_t tuples, Value domain, uint64_t seed) {
  TestInstance t;
  Rng rng(seed);
  const RelationId r = t.db.Add(UniformBinaryRelation("R", tuples, domain, rng));
  const RelationId s = t.db.Add(UniformBinaryRelation("S", tuples, domain, rng));
  const RelationId u = t.db.Add(UniformBinaryRelation("T", tuples, domain, rng));
  const RelationId v = t.db.Add(UniformBinaryRelation("U", tuples, domain, rng));
  t.query.AddAtom(r, {0, 1});
  t.query.AddAtom(s, {1, 2});
  t.query.AddAtom(u, {1, 3});
  t.query.AddAtom(v, {3, 4});
  return t;
}

// Reference: all results sorted by SUM weight from the oracle.
std::vector<double> OracleSortedCosts(const TestInstance& t) {
  const Relation out = NestedLoopJoin(t.db, t.query);
  std::vector<double> costs;
  costs.reserve(out.NumTuples());
  for (RowId r = 0; r < out.NumTuples(); ++r) {
    costs.push_back(out.TupleWeight(r));
  }
  std::sort(costs.begin(), costs.end());
  return costs;
}

// Drains an iterator, checking monotone costs and valid assignments.
std::vector<RankedResult> Drain(RankedIterator* it) {
  std::vector<RankedResult> results;
  while (auto r = it->Next()) {
    if (!results.empty()) {
      EXPECT_GE(r->cost, results.back().cost - 1e-12)
          << "cost order violated at rank " << results.size();
    }
    results.push_back(std::move(*r));
  }
  return results;
}

// Checks a drained stream against the oracle: same multiset of costs in
// sorted order, and every assignment is a genuine join result.
void CheckAgainstOracle(const TestInstance& t,
                        const std::vector<RankedResult>& results) {
  const std::vector<double> expected = OracleSortedCosts(t);
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_NEAR(results[i].cost, expected[i], 1e-9) << "rank " << i;
  }
  // Spot-check assignments satisfy every atom (full membership check).
  for (size_t i = 0; i < std::min<size_t>(results.size(), 20); ++i) {
    for (const Atom& atom : t.query.atoms()) {
      const Relation& rel = t.db.relation(atom.relation);
      bool found = false;
      for (RowId r = 0; r < rel.NumTuples() && !found; ++r) {
        bool match = true;
        for (size_t c = 0; c < atom.vars.size(); ++c) {
          if (rel.At(r, c) !=
              results[i].assignment[static_cast<size_t>(atom.vars[c])]) {
            match = false;
            break;
          }
        }
        found = match;
      }
      EXPECT_TRUE(found) << "rank " << i << " violates an atom";
    }
  }
}

TEST(TdpTest, HasResultsMatchesOracle) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    TestInstance t = MakePathInstance(3, 8, 6, seed);
    Tdp<SumCost> tdp(t.db, t.query, SortMode::kEager, nullptr);
    const Relation oracle = NestedLoopJoin(t.db, t.query);
    EXPECT_EQ(tdp.HasResults(), oracle.NumTuples() > 0) << "seed=" << seed;
  }
}

TEST(TdpTest, OptimalCompletionIsMinimumCost) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    TestInstance t = MakePathInstance(3, 20, 4, seed);
    Tdp<SumCost> tdp(t.db, t.query, SortMode::kEager, nullptr);
    if (!tdp.HasResults()) continue;
    std::vector<RowId> choice(tdp.NumNodes());
    tdp.CompleteOptimally(0, tdp.RootGroup(), &choice);
    const double best = tdp.CostOf(choice);
    const auto oracle = OracleSortedCosts(t);
    EXPECT_NEAR(best, oracle.front(), 1e-9) << "seed=" << seed;
    // And it matches the root group's advertised best.
    EXPECT_NEAR(tdp.GroupBest(0, tdp.RootGroup()), best, 1e-9);
  }
}

TEST(TdpTest, GroupTupleRanksAreMonotoneLazyAndEager) {
  TestInstance t = MakePathInstance(2, 40, 3, 7);
  for (SortMode mode :
       {SortMode::kEager, SortMode::kLazy, SortMode::kQuickselect}) {
    Tdp<SumCost> tdp(t.db, t.query, mode, nullptr);
    TdpCursor<SumCost> cur(&tdp);
    for (size_t n = 0; n < tdp.NumNodes(); ++n) {
      for (GroupId g = 0; g < tdp.node(n).groups.size(); ++g) {
        double prev = -1e300;
        RowId row = 0;
        for (size_t rank = 0; cur.GroupTuple(n, g, rank, &row); ++rank) {
          const double b = tdp.node(n).best[row];
          EXPECT_GE(b, prev - 1e-12);
          prev = b;
        }
      }
    }
  }
}

TEST(TdpTest, EmptyJoinHasNoResults) {
  Database db;
  Relation r = Relation::WithArity("R", 2);
  r.AddTuple({1, 2}, 0.5);
  Relation s = Relation::WithArity("S", 2);
  s.AddTuple({3, 4}, 0.5);  // no join partner
  const RelationId rid = db.Add(std::move(r)), sid = db.Add(std::move(s));
  ConjunctiveQuery q;
  q.AddAtom(rid, {0, 1});
  q.AddAtom(sid, {1, 2});
  Tdp<SumCost> tdp(db, q, SortMode::kEager, nullptr);
  EXPECT_FALSE(tdp.HasResults());
  AnyKRec<SumCost> rec(&tdp);
  EXPECT_FALSE(rec.Next().has_value());
}

// ---- Differential sweeps across algorithms and query shapes. ----

struct AnyKParam {
  std::string shape;
  size_t tuples;
  Value domain;
  uint64_t seed;
};

class AnyKSweepTest : public ::testing::TestWithParam<AnyKParam> {
 protected:
  TestInstance MakeInstance() const {
    const auto& p = GetParam();
    if (p.shape == "path2") return MakePathInstance(2, p.tuples, p.domain, p.seed);
    if (p.shape == "path4") return MakePathInstance(4, p.tuples, p.domain, p.seed);
    if (p.shape == "star") return MakeStarInstance(p.tuples, p.domain, p.seed);
    return MakeBushyInstance(p.tuples, p.domain, p.seed);
  }
};

TEST_P(AnyKSweepTest, RecMatchesOracle) {
  TestInstance t = MakeInstance();
  Tdp<SumCost> tdp(t.db, t.query, SortMode::kLazy, nullptr);
  AnyKRec<SumCost> rec(&tdp);
  CheckAgainstOracle(t, Drain(&rec));
}

TEST_P(AnyKSweepTest, PartEagerMatchesOracle) {
  TestInstance t = MakeInstance();
  Tdp<SumCost> tdp(t.db, t.query, SortMode::kEager, nullptr);
  AnyKPart<SumCost> part(&tdp);
  CheckAgainstOracle(t, Drain(&part));
}

TEST_P(AnyKSweepTest, PartLazyMatchesOracle) {
  TestInstance t = MakeInstance();
  Tdp<SumCost> tdp(t.db, t.query, SortMode::kLazy, nullptr);
  AnyKPart<SumCost> part(&tdp);
  CheckAgainstOracle(t, Drain(&part));
}

TEST_P(AnyKSweepTest, PartTake2MatchesOracle) {
  TestInstance t = MakeInstance();
  Tdp<SumCost> tdp(t.db, t.query, SortMode::kLazy, nullptr);
  AnyKPart<SumCost, PartStrategy::kTake2> part(&tdp);
  CheckAgainstOracle(t, Drain(&part));
}

TEST_P(AnyKSweepTest, PartMemoizedMatchesOracle) {
  TestInstance t = MakeInstance();
  Tdp<SumCost> tdp(t.db, t.query, SortMode::kQuickselect, nullptr);
  AnyKPart<SumCost, PartStrategy::kTake2> part(&tdp);
  CheckAgainstOracle(t, Drain(&part));
}

TEST_P(AnyKSweepTest, BatchMatchesOracle) {
  TestInstance t = MakeInstance();
  Tdp<SumCost> tdp(t.db, t.query, SortMode::kEager, nullptr);
  BatchSorted<SumCost> batch(&tdp);
  CheckAgainstOracle(t, Drain(&batch));
}

TEST_P(AnyKSweepTest, UnrankedEnumeratorCoversEverything) {
  TestInstance t = MakeInstance();
  Tdp<SumCost> tdp(t.db, t.query, SortMode::kEager, nullptr);
  UnrankedEnumerator<SumCost> en(&tdp);
  size_t count = 0;
  while (en.Next().has_value()) ++count;
  EXPECT_EQ(count, NestedLoopJoin(t.db, t.query).NumTuples());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnyKSweepTest,
    ::testing::Values(AnyKParam{"path2", 15, 3, 1},
                      AnyKParam{"path2", 40, 6, 2},
                      AnyKParam{"path4", 12, 3, 3},
                      AnyKParam{"path4", 25, 5, 4},
                      AnyKParam{"star", 12, 3, 5},
                      AnyKParam{"star", 30, 6, 6},
                      AnyKParam{"bushy", 10, 3, 7},
                      AnyKParam{"bushy", 20, 4, 8},
                      AnyKParam{"bushy", 35, 6, 9}));

// ---- Ranking-function generality. ----

template <typename CM>
void CheckModelAgainstBruteForce(const TestInstance& t) {
  // Brute-force: compute all results' costs under CM via the oracle's
  // per-result weights... the oracle only sums, so recompute from
  // scratch: enumerate with BatchSorted under CM and verify order, then
  // check REC and PART produce the same cost sequence.
  Tdp<CM> tdp_batch(t.db, t.query, SortMode::kEager, nullptr);
  BatchSorted<CM> batch(&tdp_batch);
  std::vector<double> batch_costs;
  while (auto r = batch.Next()) batch_costs.push_back(r->cost);

  Tdp<CM> tdp_rec(t.db, t.query, SortMode::kLazy, nullptr);
  AnyKRec<CM> rec(&tdp_rec);
  std::vector<double> rec_costs;
  while (auto r = rec.Next()) rec_costs.push_back(r->cost);

  Tdp<CM> tdp_part(t.db, t.query, SortMode::kEager, nullptr);
  AnyKPart<CM> part(&tdp_part);
  std::vector<double> part_costs;
  while (auto r = part.Next()) part_costs.push_back(r->cost);

  ASSERT_EQ(batch_costs.size(), rec_costs.size());
  ASSERT_EQ(batch_costs.size(), part_costs.size());
  for (size_t i = 0; i < batch_costs.size(); ++i) {
    EXPECT_NEAR(batch_costs[i], rec_costs[i], 1e-9) << "rank " << i;
    EXPECT_NEAR(batch_costs[i], part_costs[i], 1e-9) << "rank " << i;
  }
}

TEST(RankingModelsTest, MaxCostAgrees) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    CheckModelAgainstBruteForce<MaxCost>(MakePathInstance(3, 18, 4, seed));
  }
}

TEST(RankingModelsTest, ProdCostAgrees) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    CheckModelAgainstBruteForce<ProdCost>(MakeStarInstance(15, 4, seed));
  }
}

TEST(RankingModelsTest, LexCostOrdersLexicographically) {
  // LEX: full drain must be sorted under the exact vector comparison.
  TestInstance t = MakePathInstance(3, 15, 4, 11);
  Tdp<LexCost> tdp(t.db, t.query, SortMode::kLazy, nullptr);
  AnyKRec<LexCost> rec(&tdp);
  std::vector<LexCost::CostT> costs;
  while (auto r = rec.NextWithCost()) costs.push_back(r->second);
  for (size_t i = 1; i < costs.size(); ++i) {
    EXPECT_FALSE(LexCost::Less(costs[i], costs[i - 1])) << "rank " << i;
  }
  // Same count as SUM enumeration.
  EXPECT_EQ(costs.size(), OracleSortedCosts(t).size());
}

TEST(RankingModelsTest, MaxCostIsBottleneck) {
  // Hand-built: path of two atoms; the best-by-max result differs from
  // the best-by-sum result.
  Database db;
  Relation r = Relation::WithArity("R", 2);
  r.AddTuple({1, 2}, 5.0);   // heavy first hop
  r.AddTuple({1, 3}, 6.0);
  Relation s = Relation::WithArity("S", 2);
  s.AddTuple({2, 4}, 5.5);   // (1,2,4): max 5.5, sum 10.5
  s.AddTuple({3, 4}, 0.5);   // (1,3,4): max 6.0, sum 6.5
  const RelationId rid = db.Add(std::move(r)), sid = db.Add(std::move(s));
  ConjunctiveQuery q;
  q.AddAtom(rid, {0, 1});
  q.AddAtom(sid, {1, 2});

  Tdp<MaxCost> tmax(db, q, SortMode::kEager, nullptr);
  AnyKPart<MaxCost> pmax(&tmax);
  const auto first_max = pmax.Next();
  ASSERT_TRUE(first_max.has_value());
  EXPECT_DOUBLE_EQ(first_max->cost, 5.5);

  Tdp<SumCost> tsum(db, q, SortMode::kEager, nullptr);
  AnyKPart<SumCost> psum(&tsum);
  const auto first_sum = psum.Next();
  ASSERT_TRUE(first_sum.has_value());
  EXPECT_DOUBLE_EQ(first_sum->cost, 6.5);
}

// ---- Factory and union. ----

TEST(FactoryTest, AllAlgorithmsAgreeViaFactory) {
  TestInstance t = MakePathInstance(3, 30, 5, 13);
  const auto expected = OracleSortedCosts(t);
  for (AnyKAlgorithm algo :
       {AnyKAlgorithm::kRec, AnyKAlgorithm::kPartEager,
        AnyKAlgorithm::kPartLazy, AnyKAlgorithm::kPartTake2,
        AnyKAlgorithm::kPartMemoized, AnyKAlgorithm::kBatch}) {
    auto it = MakeAnyK(t.db, t.query, algo);
    const auto results = Drain(it.get());
    ASSERT_EQ(results.size(), expected.size()) << AnyKAlgorithmName(algo);
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_NEAR(results[i].cost, expected[i], 1e-9)
          << AnyKAlgorithmName(algo) << " rank " << i;
    }
  }
}

TEST(UnionTest, MergesDisjointStreamsInOrder) {
  // Two disjoint path instances merged must equal the concatenated
  // sorted costs.
  TestInstance t1 = MakePathInstance(2, 20, 4, 17);
  TestInstance t2 = MakePathInstance(2, 20, 4, 18);
  std::vector<std::unique_ptr<RankedIterator>> inputs;
  inputs.push_back(MakeAnyK(t1.db, t1.query, AnyKAlgorithm::kRec));
  inputs.push_back(MakeAnyK(t2.db, t2.query, AnyKAlgorithm::kRec));
  UnionAnyK merged(std::move(inputs));
  std::vector<double> expected = OracleSortedCosts(t1);
  const auto e2 = OracleSortedCosts(t2);
  expected.insert(expected.end(), e2.begin(), e2.end());
  std::sort(expected.begin(), expected.end());
  const auto results = Drain(&merged);
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_NEAR(results[i].cost, expected[i], 1e-9);
  }
}

TEST(UnionTest, DeduplicatesWhenAsked) {
  TestInstance t = MakePathInstance(2, 15, 4, 19);
  std::vector<std::unique_ptr<RankedIterator>> inputs;
  inputs.push_back(MakeAnyK(t.db, t.query, AnyKAlgorithm::kRec));
  inputs.push_back(MakeAnyK(t.db, t.query, AnyKAlgorithm::kPartEager));
  UnionAnyK merged(std::move(inputs), /*deduplicate=*/true);
  const auto results = Drain(&merged);
  // Dedup is by assignment, so the union of two identical streams must
  // yield exactly the distinct value-rows of the output.
  Relation oracle = NestedLoopJoin(t.db, t.query);
  oracle.DeduplicateKeepLightest();
  EXPECT_EQ(results.size(), oracle.NumTuples());
}

TEST(UnionTest, EmptyInputs) {
  UnionAnyK merged({});
  EXPECT_FALSE(merged.Next().has_value());
}

// ---- Any-k on decomposed cyclic queries (4-cycle via fhw-2 bags). ----

TEST(DecomposedAnyKTest, FourCycleRankedEnumerationMatchesOracle) {
  Rng rng(21);
  Database db;
  const RelationId e = db.Add(UniformBinaryRelation("E", 60, 6, rng));
  ConjunctiveQuery q;
  q.AddAtom(e, {0, 1});
  q.AddAtom(e, {1, 2});
  q.AddAtom(e, {2, 3});
  q.AddAtom(e, {3, 0});
  // Decompose, then rank-enumerate over the bags.
  const auto grouping = FindAcyclicGrouping(q);
  ASSERT_TRUE(grouping.has_value());
  JoinStats stats;
  DecomposedQuery dq = MaterializeGrouping(db, q, *grouping, &stats);
  auto it = MakeAnyK(dq.db, dq.query, AnyKAlgorithm::kRec);
  const auto results = Drain(it.get());
  TestInstance t;
  t.db = std::move(db);
  t.query = q;
  const auto expected = OracleSortedCosts(t);
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_NEAR(results[i].cost, expected[i], 1e-9);
  }
}

}  // namespace
}  // namespace topkjoin
