// E16: live updates -- delta apply + T-DP artifact patch vs cold
// rebuild.
//
// The workload is the same preprocessing-heavy path-4 join as E15
// (~50k tuples/relation), now mutated in place: one committed Delta
// appends a small batch of joining tuples to every relation. The bench
// measures the whole incremental-maintenance path the serving layer
// takes on a warm open after the mutation:
//
//   1. cold build: MakeTreeArtifact from scratch (what nuke-on-bump
//      used to pay on EVERY open after EVERY mutation);
//   2. delta apply: Database::ApplyDelta commit-then-publish;
//   3. patch: PreprocessingArtifact::TryPatch -- the delta-scoped
//      refold that rebuilds only the touched T-DP groups. CI gates
//      rebuild / (apply + patch) >= 5x and pins the refold locality
//      (groups_refolded << groups_total).
//   4. serving-level: the warm OpenCursor after the delta must patch
//      (artifact_patches = 1), not rebuild (builds stays 1).
//
// Plain executable (no Google Benchmark dependency) so CI always builds
// and runs it; emits BENCH_e16.json next to the binary.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "src/anyk/artifact.h"
#include "src/data/delta.h"
#include "src/data/generators.h"
#include "src/ranking/cost_model.h"
#include "src/serving/serving_engine.h"
#include "src/util/rng.h"

namespace topkjoin {
namespace {

struct Workload {
  Database db;
  ConjunctiveQuery query;
};

// Path-4 join R1(a,b) |><| R2(b,c) |><| R3(c,d), same shape as E15.
Workload HeavyPath(size_t tuples, Value domain, uint64_t seed) {
  Workload w;
  Rng rng(seed);
  const RelationId r1 =
      w.db.Add(UniformBinaryRelation("R1", tuples, domain, rng));
  const RelationId r2 =
      w.db.Add(UniformBinaryRelation("R2", tuples, domain, rng));
  const RelationId r3 =
      w.db.Add(UniformBinaryRelation("R3", tuples, domain, rng));
  w.query.AddAtom(r1, {0, 1});
  w.query.AddAtom(r2, {1, 2});
  w.query.AddAtom(r3, {2, 3});
  return w;
}

// Appends `rows` tuples per relation, each duplicating a random
// existing row with a fresh weight: every appended tuple's join keys
// are already interned, so the structural refold always applies.
Delta DuplicatingDelta(const Workload& w, size_t rows, Rng& rng) {
  Delta delta;
  for (RelationId id = 0; id < w.db.NumRelations(); ++id) {
    const Relation& rel = w.db.relation(id);
    RelationDelta& rd = delta.ForRelation(id);
    for (size_t i = 0; i < rows; ++i) {
      const RowId row = rng.NextBounded(rel.NumTuples());
      for (const Value v : rel.Tuple(row)) rd.values.push_back(v);
      rd.weights.push_back(rng.NextDouble() * 10.0);
    }
  }
  return delta;
}

double NanosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<double> HeadCosts(const PreprocessingArtifact& a, size_t k) {
  std::vector<double> out;
  auto it = a.NewStream();
  while (out.size() < k) {
    auto r = it->Next();
    if (!r.has_value()) break;
    out.push_back(r->cost);
  }
  return out;
}

}  // namespace
}  // namespace topkjoin

int main() {
  using namespace topkjoin;
  constexpr size_t kTuples = 50000;
  constexpr Value kDomain = 2000;
  constexpr size_t kDeltaRows = 64;  // per relation
  constexpr size_t kHead = 100;
  constexpr size_t kPatchIters = 5;
  constexpr size_t kRebuildIters = 3;

  Workload w = HeavyPath(kTuples, kDomain, 42);
  Rng rng(43);

  // ---- Serving engine warmed at the pre-delta epoch.
  ServingOptions options;
  options.num_workers = 0;
  ServingEngine serving(options);
  const SessionId session = serving.OpenSession();
  auto warmup = serving.OpenCursor(session, w.db, w.query);
  if (!warmup.ok()) {
    std::fprintf(stderr, "warm-up OpenCursor failed: %s\n",
                 warmup.status().message().c_str());
    return 1;
  }
  (void)serving.CloseCursor(warmup.value());

  // ---- Cold build at the pre-delta epoch: the patch base.
  const auto cold_start = std::chrono::steady_clock::now();
  auto base = MakeTreeArtifact<SumCost>(w.db, w.query,
                                        AnyKAlgorithm::kPartLazy, nullptr);
  const double cold_build_ns = NanosSince(cold_start);
  const uint64_t built_at = w.db.version();

  // ---- One committed delta: 3 x kDeltaRows appended tuples.
  const Delta delta = DuplicatingDelta(w, kDeltaRows, rng);
  const auto apply_start = std::chrono::steady_clock::now();
  const Status applied = w.db.ApplyDelta(delta);
  const double delta_apply_ns = NanosSince(apply_start);
  if (!applied.ok()) {
    std::fprintf(stderr, "ApplyDelta failed: %s\n",
                 applied.message().c_str());
    return 1;
  }

  std::vector<AppendDelta> deltas;
  if (!w.db.DeltasSince(built_at, &deltas)) {
    std::fprintf(stderr, "delta log does not cover the append\n");
    return 1;
  }
  const auto snapshot = w.db.Snapshot();

  // ---- Patch: delta-scoped refold of only the touched groups.
  // Best-of-N on both sides: single-shot timings of millisecond-scale
  // work are dominated by first-touch page faults and allocator state,
  // and the minimum is the standard noise-robust estimator.
  std::shared_ptr<const PreprocessingArtifact> patched;
  double patch_ns = 0.0;
  for (size_t i = 0; i < kPatchIters; ++i) {
    const auto patch_start = std::chrono::steady_clock::now();
    auto attempt = base->TryPatch(snapshot->view(), deltas);
    const double ns = NanosSince(patch_start);
    if (attempt == nullptr) {
      std::fprintf(stderr, "TryPatch refused a joining append delta\n");
      return 1;
    }
    if (patched == nullptr || ns < patch_ns) patch_ns = ns;
    patched = std::move(attempt);
  }
  const TdpPatchStats* stats = patched->patch_stats();
  if (stats == nullptr) {
    std::fprintf(stderr, "patched artifact exposes no patch stats\n");
    return 1;
  }

  // ---- Rebuild: what the nuke-on-bump policy would pay instead.
  std::shared_ptr<const PreprocessingArtifact> rebuilt;
  double rebuild_ns = 0.0;
  for (size_t i = 0; i < kRebuildIters; ++i) {
    const auto rebuild_start = std::chrono::steady_clock::now();
    auto attempt = MakeTreeArtifact<SumCost>(
        snapshot->view(), w.query, AnyKAlgorithm::kPartLazy, nullptr);
    const double ns = NanosSince(rebuild_start);
    if (rebuilt == nullptr || ns < rebuild_ns) rebuild_ns = ns;
    rebuilt = std::move(attempt);
  }

  const double incremental_ns = delta_apply_ns + patch_ns;
  const double ratio = incremental_ns > 0 ? rebuild_ns / incremental_ns : 0.0;

  // Correctness spot check: the patched and rebuilt artifacts agree on
  // the top-k prefix.
  const std::vector<double> patched_head = HeadCosts(*patched, kHead);
  const std::vector<double> rebuilt_head = HeadCosts(*rebuilt, kHead);
  const bool streams_agree = patched_head == rebuilt_head;

  // ---- Serving level: the warm open after the delta patches in place.
  auto warm = serving.OpenCursor(session, w.db, w.query);
  if (!warm.ok()) {
    std::fprintf(stderr, "post-delta OpenCursor failed\n");
    return 1;
  }
  (void)serving.CloseCursor(warm.value());
  const uint64_t serving_builds = serving.NumArtifactsBuilt();
  const uint64_t serving_patches = serving.NumArtifactsPatched();

  std::printf("BENCH e16 live updates (path-4, %zu tuples/relation, "
              "%zu appended rows/relation)\n",
              kTuples, kDeltaRows);
  std::printf("  cold build=%.1fus  rebuild=%.1fus\n", cold_build_ns / 1e3,
              rebuild_ns / 1e3);
  std::printf("  delta apply=%.1fus  patch=%.1fus  rebuild/incremental="
              "%.1fx\n",
              delta_apply_ns / 1e3, patch_ns / 1e3, ratio);
  std::printf("  refold locality: %llu / %llu groups refolded, "
              "%llu rows appended\n",
              static_cast<unsigned long long>(stats->groups_refolded),
              static_cast<unsigned long long>(stats->groups_total),
              static_cast<unsigned long long>(stats->rows_appended));
  std::printf("  serving after delta: builds=%llu patches=%llu "
              "streams_agree=%s\n",
              static_cast<unsigned long long>(serving_builds),
              static_cast<unsigned long long>(serving_patches),
              streams_agree ? "yes" : "no");

  std::ofstream json("BENCH_e16.json");
  json << "{\n"
       << "  \"bench\": \"e16_live_updates\",\n"
       << "  \"tuples_per_relation\": " << kTuples << ",\n"
       << "  \"delta_rows_per_relation\": " << kDeltaRows << ",\n"
       << "  \"cold_build_ns\": " << cold_build_ns << ",\n"
       << "  \"rebuild_ns\": " << rebuild_ns << ",\n"
       << "  \"delta_apply_ns\": " << delta_apply_ns << ",\n"
       << "  \"patch_ns\": " << patch_ns << ",\n"
       << "  \"rebuild_incremental_ratio\": " << ratio << ",\n"
       << "  \"groups_total\": " << stats->groups_total << ",\n"
       << "  \"groups_refolded\": " << stats->groups_refolded << ",\n"
       << "  \"rows_appended\": " << stats->rows_appended << ",\n"
       << "  \"serving_artifact_builds\": " << serving_builds << ",\n"
       << "  \"serving_artifact_patches\": " << serving_patches << ",\n"
       << "  \"streams_agree\": " << (streams_agree ? "true" : "false")
       << "\n"
       << "}\n";
  return 0;
}
