#include "src/join/join_stats.h"

#include <algorithm>

namespace topkjoin {

JoinStats& JoinStats::operator+=(const JoinStats& other) {
  intermediate_tuples += other.intermediate_tuples;
  max_intermediate_size =
      std::max(max_intermediate_size, other.max_intermediate_size);
  output_tuples += other.output_tuples;
  probes += other.probes;
  comparisons += other.comparisons;
  return *this;
}

void JoinStats::RecordIntermediate(int64_t size) {
  intermediate_tuples += size;
  max_intermediate_size = std::max(max_intermediate_size, size);
}

std::string JoinStats::DebugString() const {
  return "intermediate=" + std::to_string(intermediate_tuples) +
         " max_intermediate=" + std::to_string(max_intermediate_size) +
         " output=" + std::to_string(output_tuples) +
         " probes=" + std::to_string(probes) +
         " comparisons=" + std::to_string(comparisons);
}

}  // namespace topkjoin
