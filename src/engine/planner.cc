#include "src/engine/planner.h"

#include <cmath>
#include <cstdio>
#include <string>

#include "src/cycles/fourcycle.h"
#include "src/query/agm.h"
#include "src/query/hypergraph.h"

namespace topkjoin {

namespace {

void Explain(QueryPlan* plan, const std::string& line) {
  plan->rationale += line;
  plan->rationale += '\n';
}

std::string FormatCount(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

// Chooses the per-tree algorithm for an acyclic (sub)plan from the
// requested k and the AGM output estimate. Section 4 of the paper: any-k
// wins time-to-first-result, batch-then-sort amortizes best when nearly
// the whole output is consumed; among the any-k variants PART(Lazy)
// reaches the first results fastest while REC amortizes toward a full
// drain.
AnyKAlgorithm ChooseTreeAlgorithm(const ExecutionOptions& opts,
                                  double estimated_output, QueryPlan* plan) {
  if (opts.force_algorithm.has_value()) {
    Explain(plan, std::string("algorithm forced by caller: ") +
                      AnyKAlgorithmName(*opts.force_algorithm));
    return *opts.force_algorithm;
  }
  if (!opts.k.has_value()) {
    Explain(plan,
            "k unknown: keep the anytime property with anyk-rec "
            "(best full-drain amortization among streaming variants)");
    return AnyKAlgorithm::kRec;
  }
  const double k = static_cast<double>(*opts.k);
  if (*opts.k > kAlwaysAnyKThreshold &&
      k >= kBatchOutputFraction * estimated_output) {
    Explain(plan, "k=" + FormatCount(k) + " >= " +
                      FormatCount(kBatchOutputFraction) +
                      " * estimated output " + FormatCount(estimated_output) +
                      ": batch-then-sort amortizes best");
    return AnyKAlgorithm::kBatch;
  }
  if (*opts.k <= kAlwaysAnyKThreshold) {
    Explain(plan, "k=" + FormatCount(k) +
                      " is small: anyk-part-lazy minimizes "
                      "time-to-first-result");
    return AnyKAlgorithm::kPartLazy;
  }
  Explain(plan, "k=" + FormatCount(k) + " is moderate vs estimated output " +
                    FormatCount(estimated_output) +
                    ": anyk-rec balances delay and total time");
  return AnyKAlgorithm::kRec;
}

}  // namespace

const char* PlanStrategyName(PlanStrategy strategy) {
  switch (strategy) {
    case PlanStrategy::kAnyKDirect:
      return "anyk-direct";
    case PlanStrategy::kBatchSort:
      return "batch-sort";
    case PlanStrategy::kDecompose:
      return "decompose";
    case PlanStrategy::kUnionCases:
      return "union-cases";
  }
  return "unknown";
}

std::string QueryPlan::DebugString() const {
  std::string out;
  out += "QueryPlan{strategy=";
  out += PlanStrategyName(strategy);
  out += ", algorithm=";
  out += AnyKAlgorithmName(algorithm);
  out += ", ranking=";
  out += CostModelName(ranking.model);
  out += ", k=";
  out += k.has_value() ? FormatCount(static_cast<double>(*k)) : "all";
  out += ", est_output=";
  out += FormatCount(estimated_output);
  if (grouping.has_value()) {
    out += ", bags=";
    out += FormatCount(static_cast<double>(grouping->groups.size()));
  }
  out += "}\n";
  out += rationale;
  return out;
}

StatusOr<QueryPlan> PlanQuery(const Database& db,
                              const ConjunctiveQuery& query,
                              const RankingSpec& ranking,
                              const ExecutionOptions& opts) {
  if (query.NumAtoms() == 0) {
    return Status::Error("cannot plan an empty query");
  }
  for (const Atom& atom : query.atoms()) {
    if (atom.relation >= db.NumRelations()) {
      return Status::Error("query references relation id " +
                           std::to_string(atom.relation) +
                           " outside the database");
    }
    if (atom.vars.size() != db.relation(atom.relation).arity()) {
      return Status::Error("atom over '" + db.relation(atom.relation).name() +
                           "' binds " + std::to_string(atom.vars.size()) +
                           " vars but the relation has arity " +
                           std::to_string(db.relation(atom.relation).arity()));
    }
  }

  QueryPlan plan;
  plan.ranking = ranking;
  plan.k = opts.k;
  const auto agm = AgmBound(query, db);
  plan.estimated_output = agm.ok() ? agm.value() : 0.0;

  if (IsAcyclic(query)) {
    Explain(&plan, "GYO reduction succeeds: query is alpha-acyclic, "
                   "single T-DP tree suffices");
    plan.algorithm =
        ChooseTreeAlgorithm(opts, plan.estimated_output, &plan);
    plan.strategy = plan.algorithm == AnyKAlgorithm::kBatch
                        ? PlanStrategy::kBatchSort
                        : PlanStrategy::kAnyKDirect;
    return plan;
  }

  // Cyclic: materialized bags carry per-tuple member-weight sequences
  // (WeightMatrix), so every dioid -- not just additive SUM -- folds
  // exact bag-tuple costs and the downstream T-DP ranks faithfully.
  Explain(&plan, "GYO reduction fails: query is cyclic");
  Explain(&plan, std::string("ranking dioid ") + CostModelName(ranking.model) +
                     " carried through bag materialization via per-tuple "
                     "member-weight sequences");
  if (IsFourCycleShaped(query)) {
    plan.strategy = PlanStrategy::kUnionCases;
    Explain(&plan,
            "4-cycle shape detected: heavy/light case plans partition the "
            "output, ranked union merges the per-case any-k streams "
            "(O~(n^1.5) preprocessing vs O~(n^2) single-tree)");
  } else {
    const auto grouping = FindAcyclicGrouping(query);
    if (!grouping.has_value()) {
      return Status::Error("no acyclic grouping found for cyclic query");
    }
    plan.strategy = PlanStrategy::kDecompose;
    plan.grouping = *grouping;
    Explain(&plan, "greedy acyclic grouping into " +
                       std::to_string(grouping->groups.size()) +
                       " bag(s); any-k runs over the materialized bag query");
  }
  // Inside decomposed plans the tree algorithm still follows the k
  // heuristic (each case/bag query is acyclic).
  plan.algorithm = ChooseTreeAlgorithm(opts, plan.estimated_output, &plan);
  return plan;
}

}  // namespace topkjoin
