// Convenience factory: build a ranked-enumeration iterator (with its
// owned T-DP state) for an acyclic full CQ under the SUM ranking
// function. For other ranking dioids, instantiate Tdp<> and the
// algorithm templates directly (see ranking/cost_model.h).
#ifndef TOPKJOIN_ANYK_ANYK_H_
#define TOPKJOIN_ANYK_ANYK_H_

#include <memory>
#include <string>

#include "src/anyk/ranked_iterator.h"
#include "src/data/database.h"
#include "src/join/join_stats.h"
#include "src/query/cq.h"

namespace topkjoin {

/// The ranked-enumeration algorithms the tutorial compares in Part 3.
/// The four kPart* values are the successor-taking variants of
/// ANYK-PART (see anyk_part.h): they emit identical ranked streams and
/// differ in constant factors -- candidate-list maintenance and
/// frontier pushes per result.
enum class AnyKAlgorithm {
  kRec,          // ANYK-REC (recursive enumeration, k-shortest-path lineage)
  kPartEager,    // ANYK-PART, candidate lists pre-sorted; ell pushes/result
  kPartLazy,     // ANYK-PART, lists sorted incrementally; ell pushes/result
  kPartTake2,    // ANYK-PART, lazy lists + <= 2 frontier pushes per result
  kPartMemoized, // ANYK-PART, Take2 over incremental-quickselect lists
  kBatch,        // full enumeration + sort (baseline)
};

const char* AnyKAlgorithmName(AnyKAlgorithm algorithm);

/// The ANYK-PART successor/sorting variant menu, as a caller-facing
/// knob (ExecutionOptions::anyk_variant): selects among the kPart*
/// algorithms without overriding the planner's any-k vs batch routing.
enum class AnyKPartVariant { kEager, kLazy, kTake2, kMemoized };

const char* AnyKPartVariantName(AnyKPartVariant variant);

/// The kPart* algorithm implementing a variant.
AnyKAlgorithm AlgorithmForVariant(AnyKPartVariant variant);

/// Builds the T-DP (full reducer + DP + candidate lists) and wraps the
/// chosen algorithm. The query must be acyclic (CHECK-failed otherwise);
/// preprocessing cost is recorded in `stats` when provided.
std::unique_ptr<RankedIterator> MakeAnyK(const Database& db,
                                         const ConjunctiveQuery& query,
                                         AnyKAlgorithm algorithm,
                                         JoinStats* stats = nullptr);

}  // namespace topkjoin

#endif  // TOPKJOIN_ANYK_ANYK_H_
