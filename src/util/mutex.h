// Annotated mutex / scoped-lock / condition-variable wrappers: the only
// sanctioned door to locking in this codebase.
//
// Every lock outside src/util/ must be a topkjoin::Mutex and every
// critical section a topkjoin::MutexLock (tools/lint_invariants.py bans
// naked std::mutex / std::lock_guard / std::unique_lock elsewhere).
// The wrappers carry Clang Thread Safety Analysis capability attributes
// (thread_annotations.h), so the discipline -- which fields a mutex
// guards, which helpers require it -- is compiler-checked in the CI
// clang-threadsafety job; at runtime they compile down to the std
// primitives with zero added state or indirection.
//
// Condition waits: CondVar::Wait(&mu) atomically releases and reacquires
// the Mutex it is given, exactly like std::condition_variable::wait on a
// unique_lock. Use an explicit predicate loop --
//
//   MutexLock lock(&mu_);
//   while (!ready_) cv_.Wait(&mu_);
//
// -- rather than a predicate lambda: the analysis is intraprocedural and
// cannot see that a lambda body runs under the lock, so guarded reads
// inside one would (correctly, by its rules) fail to compile.
#ifndef TOPKJOIN_UTIL_MUTEX_H_
#define TOPKJOIN_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace topkjoin {

/// A std::mutex carrying the `capability` attribute. Prefer MutexLock;
/// explicit Lock/Unlock are for the rare hand-over-hand or
/// drop-around-a-callback patterns (worker_pool.cc) where a scope does
/// not match the critical section.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII critical section over a Mutex (the std::lock_guard analogue).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to Mutex. Notify* never requires the lock
/// (matching std::condition_variable); Wait must be called with `mu`
/// held and holds it again when it returns.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically unlocks `*mu`, sleeps until notified, relocks. Spurious
  /// wakeups happen; always wait in a predicate loop.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock (or Lock) still owns it
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace topkjoin

#endif  // TOPKJOIN_UTIL_MUTEX_H_
