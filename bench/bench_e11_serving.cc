// E11 -- concurrent serving throughput: ServingEngine's worker pool
// (DrainAll) at 1/2/4/8 workers vs the single-threaded Engine::StepAll
// baseline, over a mixed workload of path + star + 4-cycle cursors
// interleaved. Reported as items/sec of ranked results delivered;
// cursor opening (plan + compile + preprocessing) is untimed, so the
// numbers isolate the enumeration/scheduling path that concurrent
// serving actually parallelizes. Scaling requires hardware cores: on a
// single-CPU host every configuration collapses to the baseline minus
// scheduling overhead.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/cycles/fourcycle.h"
#include "src/engine/engine.h"
#include "src/serving/serving_engine.h"

namespace topkjoin::bench {
namespace {

constexpr size_t kSlice = 16;

// The mixed serving workload: several cursors of each structural family
// the planner routes differently (acyclic T-DP, star, cyclic 4-cycle).
std::vector<Instance> MixedWorkload() {
  std::vector<Instance> instances;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    // ~domain * fanout^3 results per path cursor.
    instances.push_back(LayeredPath(3, /*domain=*/150, /*fanout=*/3,
                                    100 + seed));
  }
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Instance t;
    Rng rng(200 + seed);
    for (int i = 0; i < 3; ++i) {
      const RelationId id = t.db.Add(UniformBinaryRelation(
          "S" + std::to_string(i), /*num_tuples=*/250, /*domain=*/50, rng));
      t.query.AddAtom(id, {0, i + 1});
    }
    instances.push_back(std::move(t));
  }
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Instance t;
    Rng rng(300 + seed);
    const RelationId e = t.db.Add(
        UniformBinaryRelation("E", /*num_tuples=*/150, /*domain=*/25, rng));
    t.query = FourCycleQuery(e);
    instances.push_back(std::move(t));
  }
  return instances;
}

void BM_StepAllSingleThread(benchmark::State& state) {
  const std::vector<Instance> instances = MixedWorkload();
  int64_t produced = 0;
  for (auto _ : state) {
    state.PauseTiming();  // cursor opening (plan/compile/preprocess)
    auto engine = std::make_unique<Engine>();
    for (const Instance& t : instances) {
      auto id = engine->OpenCursor(t.db, t.query);
      if (!id.ok()) {
        state.SkipWithError(id.status().message().c_str());
        return;
      }
    }
    state.ResumeTiming();
    while (true) {
      const auto step = engine->StepAll(kSlice);
      if (step.empty()) break;
      produced += static_cast<int64_t>(step.size());
    }
    state.PauseTiming();  // teardown outside the timed region too
    engine.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(produced);
}

void BM_ServingDrainAll(benchmark::State& state) {
  const std::vector<Instance> instances = MixedWorkload();
  ServingOptions options;
  options.num_workers = static_cast<size_t>(state.range(0));
  int64_t produced = 0;
  for (auto _ : state) {
    state.PauseTiming();  // cursor opening (plan/compile/preprocess)
    auto serving = std::make_unique<ServingEngine>(options);
    const SessionId session = serving->OpenSession();
    for (const Instance& t : instances) {
      auto id = serving->OpenCursor(session, t.db, t.query);
      if (!id.ok()) {
        state.SkipWithError(id.status().message().c_str());
        return;
      }
    }
    state.ResumeTiming();
    const auto streams = serving->DrainAll(kSlice);
    for (const auto& [id, results] : streams) {
      produced += static_cast<int64_t>(results.size());
    }
    state.PauseTiming();  // pool shutdown/joins outside the timed region
    serving.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(produced);
}

BENCHMARK(BM_StepAllSingleThread)->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ServingDrainAll)
    ->Arg(0)  // inline: scheduling overhead without threads
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace topkjoin::bench

BENCHMARK_MAIN();
