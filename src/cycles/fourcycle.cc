#include "src/cycles/fourcycle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/anyk/tree_pipeline.h"
#include "src/anyk/union_anyk.h"
#include "src/ranking/cost_model.h"
#include "src/data/hash_index.h"
#include "src/join/acyclic_count.h"
#include "src/join/yannakakis.h"
#include "src/util/common.h"

namespace topkjoin {

namespace {

// Variable ids in the canonical shape.
constexpr VarId kA = 0, kB = 1, kC = 2, kD = 3;

// Degree map of a binary relation's column.
std::unordered_map<Value, size_t> DegreeMap(const Relation& rel, size_t col) {
  std::unordered_map<Value, size_t> deg;
  deg.reserve(rel.NumTuples());
  for (RowId r = 0; r < rel.NumTuples(); ++r) ++deg[rel.At(r, col)];
  return deg;
}

struct HeavyLight {
  std::unordered_set<Value> heavy_b;  // deg_R(b) > tau  (col 1 of R)
  std::unordered_set<Value> heavy_d;  // deg_W(d) > tau  (col 0 of W)
  size_t threshold = 0;
};

size_t StaticThreshold(const Relation& r, const Relation& w) {
  const size_t n = std::max(r.NumTuples(), w.NumTuples());
  return std::max<size_t>(
      1, static_cast<size_t>(std::sqrt(static_cast<double>(n))));
}

// `threshold` 0 = the static sqrt(n) split.
HeavyLight SplitHeavyLight(const Relation& r, const Relation& w,
                           size_t threshold) {
  HeavyLight hl;
  hl.threshold = threshold > 0 ? threshold : StaticThreshold(r, w);
  for (const auto& [b, deg] : DegreeMap(r, 1)) {
    if (deg > hl.threshold) hl.heavy_b.insert(b);
  }
  for (const auto& [d, deg] : DegreeMap(w, 0)) {
    if (deg > hl.threshold) hl.heavy_d.insert(d);
  }
  return hl;
}

// One materialized 3-ary bag covering two input atoms: the relation
// (scalar weight = sum of the two member weights, the additive-dioid
// view) plus the per-tuple member-weight pairs so non-additive dioids
// can fold their exact costs downstream.
struct WeightedBag {
  Relation rel;
  WeightMatrix weights{2};

  WeightedBag(std::string name, std::vector<std::string> attrs)
      : rel(std::move(name), std::move(attrs)) {}

  void Add(std::initializer_list<Value> tuple, Weight w1, Weight w2) {
    rel.AddTuple(tuple, w1 + w2);
    weights.AppendRow({w1, w2});
  }
};

// Builds one case's DecomposedQuery from two materialized 3-ary bags.
// bag1 covers atoms {W, R} or {R, S}; bag2 covers the rest; every input
// atom's weight is counted exactly once per result.
DecomposedQuery MakeCase(WeightedBag bag1, std::vector<VarId> vars1,
                         WeightedBag bag2, std::vector<VarId> vars2) {
  DecomposedQuery out;
  const RelationId id1 = out.db.Add(std::move(bag1.rel));
  const RelationId id2 = out.db.Add(std::move(bag2.rel));
  out.query.AddAtom(id1, std::move(vars1));
  out.query.AddAtom(id2, std::move(vars2));
  out.bag_weights.push_back(std::move(bag1.weights));
  out.bag_weights.push_back(std::move(bag2.weights));
  return out;
}

}  // namespace

ConjunctiveQuery FourCycleQuery(RelationId edge_relation) {
  ConjunctiveQuery q;
  q.AddAtom(edge_relation, {kA, kB});
  q.AddAtom(edge_relation, {kB, kC});
  q.AddAtom(edge_relation, {kC, kD});
  q.AddAtom(edge_relation, {kD, kA});
  return q;
}

bool IsFourCycleShaped(const ConjunctiveQuery& query) {
  if (query.NumAtoms() != 4 || query.num_vars() != 4) return false;
  const std::vector<std::vector<VarId>> expected = {
      {kA, kB}, {kB, kC}, {kC, kD}, {kD, kA}};
  for (size_t i = 0; i < 4; ++i) {
    if (query.atom(i).vars != expected[i]) return false;
  }
  return true;
}

FourCyclePlans BuildFourCyclePlans(const Database& db,
                                   const ConjunctiveQuery& query,
                                   JoinStats* stats, size_t threshold) {
  TOPKJOIN_CHECK(IsFourCycleShaped(query));
  const Relation& r = db.relation(query.atom(0).relation);
  const Relation& s = db.relation(query.atom(1).relation);
  const Relation& t = db.relation(query.atom(2).relation);
  const Relation& w = db.relation(query.atom(3).relation);

  const HeavyLight hl = SplitHeavyLight(r, w, threshold);
  const auto is_heavy_b = [&](Value b) { return hl.heavy_b.contains(b); };
  const auto is_heavy_d = [&](Value d) { return hl.heavy_d.contains(d); };

  FourCyclePlans plans;
  plans.threshold = hl.threshold;
  plans.heavy_b_count = hl.heavy_b.size();
  plans.heavy_d_count = hl.heavy_d.size();
  std::vector<Value> heavy_b(hl.heavy_b.begin(), hl.heavy_b.end());
  std::vector<Value> heavy_d(hl.heavy_d.begin(), hl.heavy_d.end());
  std::sort(heavy_b.begin(), heavy_b.end());
  std::sort(heavy_d.begin(), heavy_d.end());

  // Shared indexes.
  HashIndex s_by_b(s, {0});   // S(b, c) by b
  HashIndex t_by_d(t, {1});   // T(c, d) by d
  HashIndex r_by_ab(r, {0, 1});
  HashIndex s_by_bc(s, {0, 1});
  HashIndex t_by_cd(t, {0, 1});
  HashIndex w_by_da(w, {0, 1});

  auto record = [&](const WeightedBag& bag) {
    if (stats != nullptr) {
      stats->RecordIntermediate(static_cast<int64_t>(bag.rel.NumTuples()));
    }
  };

  // ---- Case LL: bags ABC = R|><|S [b light], CDA = T|><|W [d light].
  {
    WeightedBag abc("abc_ll", {"a", "b", "c"});
    for (RowId ri = 0; ri < r.NumTuples(); ++ri) {
      const Value a = r.At(ri, 0), b = r.At(ri, 1);
      if (is_heavy_b(b)) continue;
      const Value key[] = {b};
      for (RowId si : s_by_b.Probe(key)) {
        abc.Add({a, b, s.At(si, 1)}, r.TupleWeight(ri), s.TupleWeight(si));
      }
    }
    WeightedBag cda("cda_ll", {"c", "d", "a"});
    for (RowId wi = 0; wi < w.NumTuples(); ++wi) {
      const Value d = w.At(wi, 0), a = w.At(wi, 1);
      if (is_heavy_d(d)) continue;
      const Value key[] = {d};
      for (RowId ti : t_by_d.Probe(key)) {
        cda.Add({t.At(ti, 0), d, a}, t.TupleWeight(ti), w.TupleWeight(wi));
      }
    }
    record(abc);
    record(cda);
    if (!abc.rel.Empty() && !cda.rel.Empty()) {
      plans.cases.push_back(MakeCase(std::move(abc), {kA, kB, kC},
                                     std::move(cda), {kC, kD, kA}));
    }
  }

  // Helper: bag ABD = W|><|R with a filter on (b heaviness, d side).
  // Iterates W edges (d, a) passing `d_pred`, then loops heavy b values
  // and keeps those with R(a, b) present -- O(|W| * #heavyB).
  auto build_abd = [&](const char* name, bool want_heavy_d) {
    WeightedBag abd(name, {"a", "b", "d"});
    for (RowId wi = 0; wi < w.NumTuples(); ++wi) {
      const Value d = w.At(wi, 0), a = w.At(wi, 1);
      if (is_heavy_d(d) != want_heavy_d) continue;
      for (Value b : heavy_b) {
        const Value key[] = {a, b};
        for (RowId ri : r_by_ab.Probe(key)) {
          abd.Add({a, b, d}, w.TupleWeight(wi), r.TupleWeight(ri));
        }
      }
    }
    return abd;
  };
  // Helper: bag BCD = S|><|T with b heavy and a chosen d-side strategy.
  auto build_bcd_d_light = [&]() {
    // d light: iterate T edges with light d, loop heavy b, check S(b,c).
    WeightedBag bcd("bcd_hl", {"b", "c", "d"});
    for (RowId ti = 0; ti < t.NumTuples(); ++ti) {
      const Value c = t.At(ti, 0), d = t.At(ti, 1);
      if (is_heavy_d(d)) continue;
      for (Value b : heavy_b) {
        const Value key[] = {b, c};
        for (RowId si : s_by_bc.Probe(key)) {
          bcd.Add({b, c, d}, s.TupleWeight(si), t.TupleWeight(ti));
        }
      }
    }
    return bcd;
  };
  auto build_bcd_both_heavy = [&]() {
    // b, d both heavy: iterate S edges with heavy b, loop heavy d,
    // check T(c, d) -- O(|S| * #heavyD).
    WeightedBag bcd("bcd_hh", {"b", "c", "d"});
    for (RowId si = 0; si < s.NumTuples(); ++si) {
      const Value b = s.At(si, 0), c = s.At(si, 1);
      if (!is_heavy_b(b)) continue;
      for (Value d : heavy_d) {
        const Value key[] = {c, d};
        for (RowId ti : t_by_cd.Probe(key)) {
          bcd.Add({b, c, d}, s.TupleWeight(si), t.TupleWeight(ti));
        }
      }
    }
    return bcd;
  };

  // ---- Case HH: bags ABD [d heavy], BCD [b,d heavy]; join on (B, D).
  {
    WeightedBag abd = build_abd("abd_hh", /*want_heavy_d=*/true);
    WeightedBag bcd = build_bcd_both_heavy();
    record(abd);
    record(bcd);
    if (!abd.rel.Empty() && !bcd.rel.Empty()) {
      plans.cases.push_back(MakeCase(std::move(abd), {kA, kB, kD},
                                     std::move(bcd), {kB, kC, kD}));
    }
  }

  // ---- Case HL (b heavy, d light): bags ABD [d light], BCD [d light].
  {
    WeightedBag abd = build_abd("abd_hl", /*want_heavy_d=*/false);
    WeightedBag bcd = build_bcd_d_light();
    record(abd);
    record(bcd);
    if (!abd.rel.Empty() && !bcd.rel.Empty()) {
      plans.cases.push_back(MakeCase(std::move(abd), {kA, kB, kD},
                                     std::move(bcd), {kB, kC, kD}));
    }
  }

  // ---- Case LH (b light, d heavy): bags DAB and BCD with light b
  // iterated from R / S edges and heavy d looped.
  {
    WeightedBag dab("dab_lh", {"d", "a", "b"});
    for (RowId ri = 0; ri < r.NumTuples(); ++ri) {
      const Value a = r.At(ri, 0), b = r.At(ri, 1);
      if (is_heavy_b(b)) continue;
      for (Value d : heavy_d) {
        const Value key[] = {d, a};
        for (RowId wi : w_by_da.Probe(key)) {
          dab.Add({d, a, b}, w.TupleWeight(wi), r.TupleWeight(ri));
        }
      }
    }
    WeightedBag bcd("bcd_lh", {"b", "c", "d"});
    for (RowId si = 0; si < s.NumTuples(); ++si) {
      const Value b = s.At(si, 0), c = s.At(si, 1);
      if (is_heavy_b(b)) continue;
      for (Value d : heavy_d) {
        const Value key[] = {c, d};
        for (RowId ti : t_by_cd.Probe(key)) {
          bcd.Add({b, c, d}, s.TupleWeight(si), t.TupleWeight(ti));
        }
      }
    }
    record(dab);
    record(bcd);
    if (!dab.rel.Empty() && !bcd.rel.Empty()) {
      plans.cases.push_back(MakeCase(std::move(dab), {kD, kA, kB},
                                     std::move(bcd), {kB, kC, kD}));
    }
  }

  return plans;
}

size_t ChooseFourCycleThreshold(const Database& db,
                                const ConjunctiveQuery& query,
                                const CardinalityEstimator* estimator) {
  TOPKJOIN_CHECK(IsFourCycleShaped(query));
  const Relation& r = db.relation(query.atom(0).relation);
  const Relation& s = db.relation(query.atom(1).relation);
  const Relation& t = db.relation(query.atom(2).relation);
  const Relation& w = db.relation(query.atom(3).relation);
  if (estimator == nullptr) return StaticThreshold(r, w);

  // Exact per-value cross-degree products: a light join value v
  // contributes deg_drive(v) * deg_probe(v) tuples to its light bag, so
  // the light side of the cost is exact given the degree maps (built in
  // O(n) here; BuildFourCyclePlans rebuilds its own for the split --
  // cheap relative to the materialization both feed).
  const auto cross = [](const std::unordered_map<Value, size_t>& drive,
                        const std::unordered_map<Value, size_t>& probe) {
    std::vector<std::pair<size_t, double>> out;  // (drive degree, product)
    out.reserve(drive.size());
    for (const auto& [v, deg] : drive) {
      const auto it = probe.find(v);
      const double pdeg =
          it == probe.end() ? 0.0 : static_cast<double>(it->second);
      out.emplace_back(deg, static_cast<double>(deg) * pdeg);
    }
    return out;
  };
  const auto by_b = cross(DegreeMap(r, 1), DegreeMap(s, 0));
  const auto by_d = cross(DegreeMap(w, 0), DegreeMap(t, 1));

  // Heavy-loop output rates from the estimator's per-edge
  // selectivities: a heavy-b pass scans W against every heavy b value
  // and probes R by (a, b) -- the probes cost exactly |W| per heavy
  // value, and the expected matches against the deg_R(b) R-edges of a
  // heavy b are sel(W, R on a) * |W| * deg_R(b) (the d side
  // symmetrically, probing T by (c, d) from S edges). The selectivity
  // is the correlated quantity the degree maps alone cannot see.
  const double sel_wr = estimator->EstimateEdgeSelectivity(query, 3, 0);
  const double sel_st = estimator->EstimateEdgeSelectivity(query, 1, 2);

  // cost(tau) = exact light-bag tuples + heavy loop probes (exact) +
  // expected heavy-bag outputs. Evaluated over a geometric grid; both
  // terms are monotone staircases in tau, so the grid's factor-2
  // resolution is within a constant of the true optimum.
  const auto light_cost = [](const std::vector<std::pair<size_t, double>>& xs,
                             size_t tau, size_t* heavy_count,
                             double* heavy_deg_mass) {
    double total = 0.0;
    size_t heavy = 0;
    double mass = 0.0;
    for (const auto& [deg, product] : xs) {
      if (deg <= tau) {
        total += product;
      } else {
        ++heavy;
        mass += static_cast<double>(deg);
      }
    }
    *heavy_count = heavy;
    *heavy_deg_mass = mass;
    return total;
  };
  size_t max_deg = 1;
  for (const auto& [deg, product] : by_b) max_deg = std::max(max_deg, deg);
  for (const auto& [deg, product] : by_d) max_deg = std::max(max_deg, deg);

  const auto cost_at = [&](size_t tau) {
    size_t heavy_b = 0, heavy_d = 0;
    double mass_b = 0.0, mass_d = 0.0;
    const double light = light_cost(by_b, tau, &heavy_b, &mass_b) +
                         light_cost(by_d, tau, &heavy_d, &mass_d);
    const double probes =
        static_cast<double>(heavy_b) * static_cast<double>(w.NumTuples()) +
        static_cast<double>(heavy_d) * static_cast<double>(s.NumTuples());
    const double outputs =
        sel_wr * static_cast<double>(w.NumTuples()) * mass_b +
        sel_st * static_cast<double>(t.NumTuples()) * mass_d;
    return light + probes + outputs;
  };

  std::vector<size_t> candidates;
  for (size_t tau = 1; tau < max_deg; tau <<= 1) candidates.push_back(tau);
  candidates.push_back(max_deg);  // everything light

  size_t best_tau = candidates.front();
  double best_cost = std::numeric_limits<double>::infinity();
  for (const size_t tau : candidates) {
    const double cost = cost_at(tau);
    if (cost < best_cost) {
      best_cost = cost;
      best_tau = tau;
    }
  }
  // The static sqrt(n) split carries the O~(n^1.5) worst-case
  // guarantee; the probe hit rates above are selectivity
  // approximations. Deviate from the guarantee only when the model
  // predicts a decisive (> 2x) win -- the regime the skewed-hub pin
  // test exercises -- so model noise on benign instances can never
  // trade the proven bound for a marginal estimate.
  const size_t static_tau = StaticThreshold(r, w);
  if (best_cost * 2.0 < cost_at(static_tau)) {
    return std::max<size_t>(1, best_tau);
  }
  return static_tau;
}

namespace {

// Each case plan owns its bag database; the per-case artifact keeps it
// alive alongside the shared T-DP, and routes the bags' member weights
// into the CM-typed T-DP.
template <typename CM>
std::shared_ptr<const PreprocessingArtifact> MakeCaseUnionArtifact(
    FourCyclePlans plans, AnyKAlgorithm algorithm, JoinStats* stats) {
  std::vector<std::shared_ptr<const PreprocessingArtifact>> cases;
  cases.reserve(plans.cases.size());
  for (DecomposedQuery& dq : plans.cases) {
    cases.push_back(MakeBagArtifact<CM>(std::move(dq), algorithm, stats));
  }
  return std::make_shared<UnionArtifact>(std::move(cases));
}

}  // namespace

std::shared_ptr<const PreprocessingArtifact> MakeFourCycleArtifact(
    const Database& db, const ConjunctiveQuery& query,
    AnyKAlgorithm algorithm, JoinStats* stats, CostModelKind model,
    size_t threshold) {
  FourCyclePlans plans = BuildFourCyclePlans(db, query, stats, threshold);
  return WithCostModel(model, [&]<typename CM>() {
    return MakeCaseUnionArtifact<CM>(std::move(plans), algorithm, stats);
  });
}

std::unique_ptr<RankedIterator> MakeFourCycleAnyK(
    const Database& db, const ConjunctiveQuery& query,
    AnyKAlgorithm algorithm, JoinStats* stats, CostModelKind model,
    size_t threshold) {
  return MakeFourCycleArtifact(db, query, algorithm, stats, model, threshold)
      ->NewStream();
}

bool FourCycleBoolean(const Database& db, const ConjunctiveQuery& query,
                      JoinStats* stats) {
  const FourCyclePlans plans = BuildFourCyclePlans(db, query, stats);
  for (const DecomposedQuery& dq : plans.cases) {
    if (YannakakisBoolean(dq.db, dq.query, stats)) return true;
  }
  return false;
}

int64_t CountFourCycles(const Database& db, const ConjunctiveQuery& query,
                        JoinStats* stats) {
  const FourCyclePlans plans = BuildFourCyclePlans(db, query, stats);
  int64_t total = 0;
  for (const DecomposedQuery& dq : plans.cases) {
    total += CountAcyclic(dq.db, dq.query, stats);
  }
  return total;
}

DecomposedQuery FourCycleFhw2(const Database& db,
                              const ConjunctiveQuery& query,
                              JoinStats* stats) {
  TOPKJOIN_CHECK(IsFourCycleShaped(query));
  AtomGrouping grouping;
  grouping.groups = {{0, 1}, {2, 3}};
  return MaterializeGrouping(db, query, grouping, stats);
}

}  // namespace topkjoin
