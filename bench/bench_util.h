// Shared workload builders for the experiment benches (E1-E9). Each
// bench binary regenerates one claim of the paper; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results.
#ifndef TOPKJOIN_BENCH_BENCH_UTIL_H_
#define TOPKJOIN_BENCH_BENCH_UTIL_H_

#include <string>

#include "src/data/database.h"
#include "src/data/generators.h"
#include "src/query/cq.h"
#include "src/util/rng.h"

namespace topkjoin::bench {

struct Instance {
  Database db;
  ConjunctiveQuery query;
};

/// Triangle query over three copies of the AGM-hard instance of
/// Section 3: every binary plan materializes ~ (n/2)^2 intermediate
/// tuples; WCO joins run in O~(n^{1.5}).
inline Instance AgmHardTriangle(size_t n, uint64_t seed) {
  Instance t;
  Rng rng(seed);
  const RelationId r = t.db.Add(AgmHardRelation("R", n, rng));
  const RelationId s = t.db.Add(AgmHardRelation("S", n, rng));
  const RelationId w = t.db.Add(AgmHardRelation("T", n, rng));
  t.query.AddAtom(r, {0, 1});
  t.query.AddAtom(s, {1, 2});
  t.query.AddAtom(w, {2, 0});
  return t;
}

/// The dangling 3-chain: binary plans pay Theta(n^2) while Yannakakis
/// stays O(n + r) with r = n * live tuples.
inline Instance DanglingChain(size_t n, double live_fraction, uint64_t seed) {
  Instance t;
  Rng rng(seed);
  Relation r1 = Relation::WithArity("x", 0), r2 = r1, r3 = r1;
  DanglingChainInstance(n, live_fraction, rng, &r1, &r2, &r3);
  const RelationId i1 = t.db.Add(std::move(r1));
  const RelationId i2 = t.db.Add(std::move(r2));
  const RelationId i3 = t.db.Add(std::move(r3));
  t.query.AddAtom(i1, {0, 1});
  t.query.AddAtom(i2, {1, 2});
  t.query.AddAtom(i3, {2, 3});
  return t;
}

/// l-stage layered path query with controlled fan-out: ~domain * fanout
/// tuples per stage; ~domain * fanout^l results. The E6 any-k workload.
inline Instance LayeredPath(size_t stages, Value domain, size_t fanout,
                            uint64_t seed) {
  Instance t;
  Rng rng(seed);
  for (size_t i = 0; i < stages; ++i) {
    const RelationId id = t.db.Add(LayeredStageRelation(
        "R" + std::to_string(i), domain, fanout, rng));
    t.query.AddAtom(id, {static_cast<VarId>(i), static_cast<VarId>(i + 1)});
  }
  return t;
}

}  // namespace topkjoin::bench

#endif  // TOPKJOIN_BENCH_BENCH_UTIL_H_
