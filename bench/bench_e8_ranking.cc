// E8 -- Section 4 claim: any-k supports a family of monotone ranking
// functions through one dioid abstraction at comparable cost. SUM, MAX
// and PROD should be near-identical; LEX pays for vector-valued costs.
//
// Expected shape: top-1000 times within a small factor across
// SUM/MAX/PROD; LEX slower by a constant factor, same asymptotics.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/anyk/anyk_rec.h"
#include "src/anyk/tdp.h"
#include "src/ranking/cost_model.h"

namespace topkjoin::bench {
namespace {

constexpr size_t kTopK = 1000;

template <typename CM>
void RunModel(benchmark::State& state) {
  const auto domain = static_cast<Value>(state.range(0));
  Instance t = LayeredPath(4, domain, 3, 29);
  size_t produced = 0;
  for (auto _ : state) {
    Tdp<CM> tdp(t.db, t.query, SortMode::kLazy, nullptr);
    AnyKRec<CM> rec(&tdp);
    produced = 0;
    while (produced < kTopK && rec.Next().has_value()) ++produced;
  }
  state.counters["domain"] = static_cast<double>(domain);
  state.counters["produced"] = static_cast<double>(produced);
  state.SetLabel(CM::kName);
}

void BM_Sum(benchmark::State& state) { RunModel<SumCost>(state); }
void BM_Max(benchmark::State& state) { RunModel<MaxCost>(state); }
void BM_Prod(benchmark::State& state) { RunModel<ProdCost>(state); }
void BM_Lex(benchmark::State& state) { RunModel<LexCost>(state); }

BENCHMARK(BM_Sum)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Max)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Prod)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Lex)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace topkjoin::bench

BENCHMARK_MAIN();
