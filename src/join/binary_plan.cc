#include "src/join/binary_plan.h"

#include <algorithm>
#include <numeric>

#include "src/util/common.h"

namespace topkjoin {

Relation LeftDeepJoin(const Database& db, const ConjunctiveQuery& query,
                      const std::vector<size_t>& atom_order,
                      JoinStats* stats) {
  TOPKJOIN_CHECK(atom_order.size() == query.NumAtoms());
  VarRelation acc = AtomVarRelation(db, query, atom_order[0]);
  for (size_t i = 1; i < atom_order.size(); ++i) {
    const VarRelation next = AtomVarRelation(db, query, atom_order[i]);
    acc = HashJoinVar(acc, next, stats);
    const auto size = static_cast<int64_t>(acc.rel.NumTuples());
    if (stats != nullptr && i + 1 < atom_order.size()) {
      stats->RecordIntermediate(size);
    }
  }
  if (stats != nullptr) {
    stats->output_tuples += static_cast<int64_t>(acc.rel.NumTuples());
  }
  return FinalizeResult(acc, query);
}

std::vector<PlanCost> OrderSurvey(const Database& db,
                                  const ConjunctiveQuery& query) {
  std::vector<size_t> order(query.NumAtoms());
  std::iota(order.begin(), order.end(), 0);
  std::vector<PlanCost> costs;
  do {
    JoinStats stats;
    (void)LeftDeepJoin(db, query, order, &stats);
    PlanCost pc;
    pc.atom_order = order;
    pc.max_intermediate = stats.max_intermediate_size;
    pc.total_intermediate = stats.intermediate_tuples;
    costs.push_back(std::move(pc));
  } while (std::next_permutation(order.begin(), order.end()));
  return costs;
}

}  // namespace topkjoin
