// Fractional edge covers and the AGM output-size bound
// (Atserias-Grohe-Marx, SIAM J. Comput. 2013; Section 3 of the paper).
#ifndef TOPKJOIN_QUERY_AGM_H_
#define TOPKJOIN_QUERY_AGM_H_

#include <vector>

#include "src/data/database.h"
#include "src/query/cq.h"
#include "src/util/status.h"

namespace topkjoin {

/// A fractional edge cover: weight x_i >= 0 per atom such that for every
/// variable v, the atoms containing v have total weight >= 1.
struct FractionalEdgeCover {
  std::vector<double> weights;
  double total_weight = 0.0;  // sum of weights (= rho* when optimal)
};

/// Minimum fractional edge cover number rho*(Q): min sum x_i. For the
/// triangle query this is 1.5; for the 4-cycle, 2.
StatusOr<FractionalEdgeCover> MinFractionalEdgeCover(
    const ConjunctiveQuery& query);

/// The AGM bound for the given instance:
///     |Q(D)| <= prod_i |R_i|^{x_i}
/// minimized over fractional covers x (equivalently, the LP with
/// objective sum x_i * log|R_i|). Returns the bound as a double
/// (+infinity never arises: empty relations give bound 0).
StatusOr<double> AgmBound(const ConjunctiveQuery& query, const Database& db);

}  // namespace topkjoin

#endif  // TOPKJOIN_QUERY_AGM_H_
