#include "src/util/rng.h"

namespace topkjoin {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the full state.
inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  for (auto& s : state_) s = SplitMix64(seed);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  TOPKJOIN_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  TOPKJOIN_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

}  // namespace topkjoin
