// Columnar in-memory relations with per-tuple weights, stored as a
// sequence of immutable, reference-counted chunks.
//
// A Relation stores tuples of fixed arity over int64 domains row-major
// within fixed-capacity chunks, plus one Weight per tuple. Weights
// drive the ranking functions of Part 3 of the paper (e.g., edge
// weights for the top-k lightest 4-cycles query of the introduction).
//
// Chunked storage is what makes database snapshots cheap and safe
// (data/database.h): copying a Relation shares its chunks (a vector of
// shared_ptrs), so a snapshot clone is O(#chunks), and every mutation
// is copy-on-write -- AddTuple clones the tail chunk iff another
// Relation still shares it, and the bulk rewrites (Sort / Deduplicate /
// Filter) always build fresh chunks. A reader holding a snapshot copy
// therefore observes bit-stable contents no matter what the writer
// appends or rewrites afterwards.
#ifndef TOPKJOIN_DATA_RELATION_H_
#define TOPKJOIN_DATA_RELATION_H_

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/util/common.h"

namespace topkjoin {

/// Index of a tuple within a relation.
using RowId = uint32_t;

/// An in-memory relation. Tuples are appended; the relation may then be
/// sorted or indexed (see HashIndex, SortedTrie). Copying is cheap
/// (chunks are shared); the join operators pass relations by
/// pointer/reference.
class Relation {
 public:
  /// Rows per chunk (power of two: row -> chunk is a shift/mask).
  static constexpr size_t kChunkShift = 12;
  static constexpr size_t kChunkRows = size_t{1} << kChunkShift;
  static constexpr size_t kChunkMask = kChunkRows - 1;

  /// Creates an empty relation with the given name and attribute names
  /// (whose count determines the arity).
  Relation(std::string name, std::vector<std::string> attribute_names);

  /// Convenience: unnamed attributes a0..a{arity-1}.
  static Relation WithArity(std::string name, size_t arity);

  const std::string& name() const { return name_; }
  size_t arity() const { return arity_; }
  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }

  size_t NumTuples() const { return num_tuples_; }
  bool Empty() const { return num_tuples_ == 0; }

  /// Appends a tuple. `values` must have exactly `arity()` entries.
  /// Copy-on-write: a tail chunk still shared with another Relation is
  /// cloned first, so copies taken earlier never observe the append.
  void AddTuple(std::span<const Value> values, Weight weight = 0.0);
  void AddTuple(std::initializer_list<Value> values, Weight weight = 0.0);

  /// Read access to tuple `row` as a span of `arity()` values. The span
  /// is contiguous (rows never straddle a chunk boundary).
  std::span<const Value> Tuple(RowId row) const {
    TOPKJOIN_DCHECK(row < NumTuples());
    const Chunk& chunk = *chunks_[row >> kChunkShift];
    return {chunk.data.data() + (row & kChunkMask) * arity_, arity_};
  }

  Value At(RowId row, size_t col) const {
    TOPKJOIN_DCHECK(col < arity_);
    TOPKJOIN_DCHECK(row < NumTuples());
    const Chunk& chunk = *chunks_[row >> kChunkShift];
    return chunk.data[(row & kChunkMask) * arity_ + col];
  }

  Weight TupleWeight(RowId row) const {
    TOPKJOIN_DCHECK(row < NumTuples());
    return chunks_[row >> kChunkShift]->weights[row & kChunkMask];
  }

  /// Sorts tuples lexicographically by the given column order (ties keep
  /// the original order stable). Invalidates external row ids.
  void SortByColumns(std::span<const size_t> columns);

  /// Removes duplicate tuples (same values; keeps the lightest weight).
  /// Invalidates external row ids.
  void DeduplicateKeepLightest();

  /// Keeps only rows for which `keep[row]` is true, preserving order.
  /// Invalidates external row ids.
  void Filter(const std::vector<bool>& keep);

  /// Total bytes of tuple payload (for memory accounting in benches).
  size_t PayloadBytes() const;

  /// True when this relation shares at least one chunk with `other`
  /// (test/diagnostic hook for the copy-on-write machinery).
  bool SharesStorageWith(const Relation& other) const;

 private:
  /// One fixed-capacity storage segment: row-major values plus weights
  /// for up to kChunkRows tuples. Immutable once shared -- mutators
  /// clone a shared chunk before touching it (copy-on-write).
  struct Chunk {
    std::vector<Value> data;      // rows * arity, row-major
    std::vector<Weight> weights;  // one per row
    size_t rows() const { return weights.size(); }
  };

  /// The tail chunk, ready for an in-place append: cloned when shared,
  /// fresh when absent or full.
  Chunk* WritableTail();

  /// Replaces the chunk sequence with fresh, densely packed chunks
  /// holding the given rows (by current RowId) in order.
  void RebuildFromRows(std::span<const RowId> order);

  std::string name_;
  size_t arity_;
  std::vector<std::string> attribute_names_;
  std::vector<std::shared_ptr<Chunk>> chunks_;
  size_t num_tuples_ = 0;
};

}  // namespace topkjoin

#endif  // TOPKJOIN_DATA_RELATION_H_
