// k-shortest s-t paths in a DAG, by both techniques the paper connects
// to any-k join enumeration.
#ifndef TOPKJOIN_KSHORTEST_KSHORTEST_H_
#define TOPKJOIN_KSHORTEST_KSHORTEST_H_

#include <cstdint>
#include <vector>

#include "src/kshortest/dag.h"

namespace topkjoin {

/// REA (Jimenez-Marzal 1999): every node lazily maintains the sorted
/// list of its best suffix paths to t; the k-th path at a node merges
/// the (k')-th paths of its successors via a per-node heap -- the exact
/// structure ANYK-REC generalizes to join trees.
std::vector<WeightedPath> KShortestPathsRea(const Dag& dag, size_t source,
                                            size_t target, size_t k);

/// Lawler-style deviations (Lawler 1972 / Hoffman-Pavley 1959): a global
/// priority queue of paths; popping a path spawns deviations at every
/// position past its deviation point, each completed optimally via the
/// shortest-suffix table -- the structure ANYK-PART generalizes.
std::vector<WeightedPath> KShortestPathsLawler(const Dag& dag, size_t source,
                                               size_t target, size_t k);

/// Exhaustive oracle for tests: all s-t paths sorted by weight
/// (exponential; small DAGs only).
std::vector<WeightedPath> AllPathsSorted(const Dag& dag, size_t source,
                                         size_t target);

}  // namespace topkjoin

#endif  // TOPKJOIN_KSHORTEST_KSHORTEST_H_
