#include "src/anyk/union_anyk.h"

#include <unordered_set>
#include <utility>

#include "src/util/hash.h"

namespace topkjoin {

struct UnionAnyK::Impl {
  struct Head {
    RankedResult result;
    size_t source = 0;
  };
  struct HeadOrder {
    bool operator()(const Head& a, const Head& b) const {
      // Min-queue on the full cost order: primary double, then the
      // component vector, so LEX streams from different case plans
      // merge in exact lexicographic order, not primary-only.
      return RankedCostLess(b.result, a.result);
    }
  };

  std::vector<std::unique_ptr<RankedIterator>> inputs;
  std::priority_queue<Head, std::vector<Head>, HeadOrder> heads;
  bool deduplicate = false;
  std::unordered_set<ValueKey, ValueKeyHash> seen;

  void Refill(size_t source) {
    auto r = inputs[source]->Next();
    if (r.has_value()) {
      heads.push(Head{std::move(*r), source});
    }
  }
};

UnionAnyK::UnionAnyK(std::vector<std::unique_ptr<RankedIterator>> inputs,
                     bool deduplicate)
    : impl_(std::make_unique<Impl>()) {
  impl_->inputs = std::move(inputs);
  impl_->deduplicate = deduplicate;
  for (size_t i = 0; i < impl_->inputs.size(); ++i) impl_->Refill(i);
}

UnionAnyK::~UnionAnyK() = default;

int64_t UnionAnyK::WorkUnits() const {
  int64_t total = 0;
  for (const auto& input : impl_->inputs) total += input->WorkUnits();
  return total;
}

std::optional<RankedResult> UnionAnyK::Next() {
  while (!impl_->heads.empty()) {
    Impl::Head head = impl_->heads.top();
    impl_->heads.pop();
    impl_->Refill(head.source);
    if (impl_->deduplicate) {
      ValueKey key{head.result.assignment};
      if (!impl_->seen.insert(std::move(key)).second) continue;
    }
    return std::move(head.result);
  }
  return std::nullopt;
}

}  // namespace topkjoin
