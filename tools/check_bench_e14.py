#!/usr/bin/env python3
"""Regression guard over BENCH_e14.json (bench_e14_obs).

Gates the observability layer's hot-loop cost:

  * Metrics-on builds: the InstrumentedIterator wrapper must cost
    < 5% on the path4 any-k drain. The gated number is the minimum of
    the two estimators the bench emits (per-mode floor ratio and the
    median of adjacent-pair ratios) -- their noise failure modes are
    disjoint, so the minimum is a robust upper-leaning estimate of the
    structural overhead on a shared runner.
  * Metrics-on builds must also actually record: a non-empty per-Next
    delay histogram with ordered percentiles (p50 <= p99 <= max).
  * Metrics-off builds must record nothing at all: a delay count of
    zero proves the recording paths compiled out.

Usage: check_bench_e14.py path/to/BENCH_e14.json
"""
import json
import sys

MAX_OVERHEAD_PCT = 5.0


def fail(msg: str) -> None:
    print(f"BENCH_e14 regression: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_bench_e14.py BENCH_e14.json")
    with open(sys.argv[1]) as f:
        data = json.load(f)

    enabled = data.get("metrics_enabled")
    if enabled is None:
        fail("metrics_enabled missing from JSON")

    if not enabled:
        count = data.get("delay_count", -1)
        if count != 0:
            fail(f"metrics-off build recorded {count} delay samples (want 0)")
        print("BENCH_e14 guard: metrics-off build recorded nothing, OK")
        return

    overhead = data.get("overhead_pct")
    if overhead is None:
        fail("overhead_pct missing from JSON")
    if overhead >= MAX_OVERHEAD_PCT:
        fail(
            f"wrapper overhead {overhead:.2f}% >= {MAX_OVERHEAD_PCT}% "
            f"(floor {data.get('floor_overhead_pct', float('nan')):.2f}%, "
            f"pair-median "
            f"{data.get('pair_median_overhead_pct', float('nan')):.2f}%)"
        )

    count = data.get("delay_count", 0)
    if count <= 0:
        fail("metrics-on build recorded no delay samples")
    p50 = data.get("delay_p50_ns", -1)
    p99 = data.get("delay_p99_ns", -1)
    pmax = data.get("delay_max_ns", -1)
    if not (0 < p50 <= p99 <= pmax):
        fail(f"delay percentiles not ordered: p50={p50} p99={p99} max={pmax}")

    print(
        f"BENCH_e14 guard: overhead {overhead:.2f}% < {MAX_OVERHEAD_PCT}%, "
        f"{count} delay samples (p50={p50}ns p99={p99}ns), all checks passed"
    )


if __name__ == "__main__":
    main()
