// The public any-k iterator interface: results in ranking order, one at
// a time, without knowing k in advance ("anytime top-k", Section 4).
#ifndef TOPKJOIN_ANYK_RANKED_ITERATOR_H_
#define TOPKJOIN_ANYK_RANKED_ITERATOR_H_

#include <algorithm>
#include <optional>
#include <vector>

#include "src/util/common.h"

namespace topkjoin {

/// One ranked join result: the full variable assignment (indexed by
/// VarId) and its cost rendered as a double (exact for the SUM/MAX/PROD
/// models; the LEX model exposes its primary component).
struct RankedResult {
  std::vector<Value> assignment;
  double cost = 0.0;
  /// Full cost components for vector-valued dioids (LEX): the
  /// descending-sorted member weights, with cost == cost_vector[0].
  /// Scalar dioids (SUM/MAX/PROD) leave it empty -- their `cost` is
  /// already exact. Merges and differential checks compare the full
  /// vector, so no ranking information is lost through the stream.
  std::vector<double> cost_vector;
};

/// The total cost order on results: the primary `cost` first, then the
/// full component vector. For scalar dioids this is the plain double
/// order; for LEX it resolves primary-component ties exactly.
inline bool RankedCostLess(const RankedResult& a, const RankedResult& b) {
  if (a.cost != b.cost) return a.cost < b.cost;
  return std::lexicographical_compare(a.cost_vector.begin(),
                                      a.cost_vector.end(),
                                      b.cost_vector.begin(),
                                      b.cost_vector.end());
}

/// Detailed pipeline counters behind WorkUnits, exposed so the
/// observability layer (src/obs/) can export them as metrics without
/// knowing the concrete algorithm. All values are monotone lifetime
/// totals except candidate_pool_bytes, which is a high-water mark.
struct PipelineCounters {
  /// Successor candidates pushed into the any-k frontier.
  int64_t frontier_pushes = 0;
  /// T-DP lazy-sort heap extractions (IqsStep pops).
  int64_t heap_extractions = 0;
  /// Peak bytes held by the candidate pool / frontier storage.
  int64_t candidate_pool_bytes = 0;
};

/// Pull-based ranked enumeration. Next() returns results in
/// non-decreasing cost order; nullopt when exhausted.
class RankedIterator {
 public:
  virtual ~RankedIterator() = default;
  virtual std::optional<RankedResult> Next() = 0;

  /// Monotone counter of RAM-model work units (heap extractions and
  /// priority-queue pushes) spent so far, preprocessing excluded. The
  /// delta between consecutive Next() calls is the per-result delay the
  /// any-k guarantee bounds -- tests assert it never spikes to
  /// O(output). Pipelines without instrumentation report 0.
  virtual int64_t WorkUnits() const { return 0; }

  /// Breakdown of WorkUnits for metrics export. Pipelines without
  /// instrumentation return zeros.
  virtual PipelineCounters Counters() const { return {}; }
};

}  // namespace topkjoin

#endif  // TOPKJOIN_ANYK_RANKED_ITERATOR_H_
