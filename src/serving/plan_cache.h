// Cross-request plan cache for the serving layer.
//
// Planning a query is no longer cheap: PlanQuery samples every relation
// (src/stats/), solves the AGM LP, and searches bag groupings. Serving
// workloads repeat a small set of hot queries, so ServingEngine caches
// the finished QueryPlan keyed by a structural fingerprint of
// (query, ranking, execution options) plus the identity AND version of
// the database it was planned against. A version bump (any Database::Add
// or mutable_relation access) makes every cached plan for that database
// unreachable; stale entries are dropped lazily on the next lookup that
// collides with them and bounded overall by LRU capacity.
//
// Thread-safety: all methods are safe to call concurrently (one mutex;
// the cache is only touched once per OpenCursor, never per Fetch).
#ifndef TOPKJOIN_SERVING_PLAN_CACHE_H_
#define TOPKJOIN_SERVING_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/engine/planner.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace topkjoin {

/// Monitoring counters; `entries` is the current size.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Lookups that found a fingerprint match planned against an older
  /// database version (the entry is dropped and the lookup misses).
  uint64_t invalidations = 0;
  /// LRU capacity evictions.
  uint64_t evictions = 0;
  /// Stale entries salvaged in place instead of dropped: the version
  /// gap was pure appends (covered by the delta log) small enough that
  /// the cached value still holds, so the entry was retagged to the new
  /// version (plans) or patched incrementally (artifacts).
  uint64_t patches = 0;
  size_t entries = 0;
};

class PlanCache {
 public:
  /// `capacity` bounds the entry count; 0 disables caching entirely
  /// (every Lookup misses, Insert is a no-op).
  explicit PlanCache(size_t capacity);

  /// Structural identity of a plan request. Two requests fingerprint
  /// equal iff they reference the same Database object and encode the
  /// same (atoms, num_vars, ranking dioid, k, forced algorithm, any-k
  /// part variant) -- everything PlanQuery's output depends on besides
  /// the data itself, which the version argument of Lookup/Insert
  /// covers.
  struct Fingerprint {
    const Database* db = nullptr;
    std::vector<uint64_t> encoded;
    uint64_t hash = 0;

    bool operator==(const Fingerprint& other) const {
      return db == other.db && encoded == other.encoded;
    }
  };

  static Fingerprint Make(const Database& db, const ConjunctiveQuery& query,
                          const RankingSpec& ranking,
                          const ExecutionOptions& opts);

  /// Returns the cached plan when present and planned at `db_version`.
  /// An entry planned at an OLDER version is dropped and the lookup
  /// misses; an entry planned at a NEWER version (a racing open for a
  /// later epoch got there first) is kept in place and the lookup is a
  /// plain miss.
  ///
  /// When `live_db` and `epoch_view` are given, an older entry is
  /// first salvaged if possible: if the gap from the cached version up
  /// to `db_version` is pure appends (covered by `live_db`'s delta
  /// log; records committed after `db_version` are ignored) and every
  /// touched relation grew by at most ~10% of its size in
  /// `epoch_view` -- the caller's pinned snapshot at `db_version`, so
  /// the sizes are exact and race-free -- the plan's cardinality
  /// estimates still hold and the entry is retagged to `db_version`
  /// and returned as a hit (counted under stats().patches). Barriers,
  /// trimmed logs, or larger growth evict as before.
  std::optional<QueryPlan> Lookup(const Fingerprint& key, uint64_t db_version,
                                  const Database* live_db = nullptr,
                                  const Database* epoch_view = nullptr)
      EXCLUDES(mu_);

  /// Caches `plan` for the key at `db_version`, evicting the least
  /// recently used entry beyond capacity. Re-inserting an existing key
  /// overwrites (last planner wins; concurrent planners of the same
  /// query produce identical plans anyway -- planning is
  /// deterministic), except that an existing entry at a NEWER version
  /// is kept: a plan from an older snapshot never downgrades it.
  void Insert(const Fingerprint& key, uint64_t db_version,
              const QueryPlan& plan) EXCLUDES(mu_);

  /// Drops every entry for the given database (e.g. before freeing it).
  void InvalidateDatabase(const Database* db) EXCLUDES(mu_);

  PlanCacheStats stats() const EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

 private:
  struct FingerprintHash {
    size_t operator()(const Fingerprint& f) const {
      return static_cast<size_t>(f.hash);
    }
  };
  struct Entry {
    Fingerprint key;
    uint64_t db_version = 0;
    QueryPlan plan;
  };
  using LruList = std::list<Entry>;

  void EraseLocked(LruList::iterator it) REQUIRES(mu_);

  const size_t capacity_;
  mutable Mutex mu_;
  LruList lru_ GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<Fingerprint, LruList::iterator, FingerprintHash> index_
      GUARDED_BY(mu_);
  PlanCacheStats stats_ GUARDED_BY(mu_);
};

}  // namespace topkjoin

#endif  // TOPKJOIN_SERVING_PLAN_CACHE_H_
