#include "src/serving/sharded_cursor_table.h"

#include <algorithm>
#include <utility>

#include "src/util/common.h"

namespace topkjoin {

namespace {

std::chrono::steady_clock::time_point DefaultTimeSource() {
  return std::chrono::steady_clock::now();
}

}  // namespace

ShardedCursorTable::ShardedCursorTable(size_t num_stripes)
    : stripes_(std::max<size_t>(1, num_stripes)),
      time_source_(&DefaultTimeSource) {}

void ShardedCursorTable::SetTimeSourceForTesting(TimeSource source) {
  time_source_.store(source == nullptr ? &DefaultTimeSource : source,
                     std::memory_order_relaxed);
}

CursorId ShardedCursorTable::Insert(std::unique_ptr<Cursor> cursor,
                                    std::shared_ptr<Session> session) {
  TOPKJOIN_CHECK(cursor != nullptr);
  TOPKJOIN_CHECK(session != nullptr);
  const CursorId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = stripe_for(id);
  MutexLock lock(&stripe.mu);
  stripe.entries.emplace(
      id, Entry{std::shared_ptr<Cursor>(std::move(cursor)),
                std::make_shared<Mutex>(), std::move(session),
                time_source_.load(std::memory_order_relaxed)()});
  return id;
}

bool ShardedCursorTable::WithCursor(
    CursorId id, const std::function<void(Cursor&, Session&)>& fn) {
  std::shared_ptr<Cursor> cursor;
  std::shared_ptr<Mutex> mu;
  std::shared_ptr<Session> session;
  {
    Stripe& stripe = stripe_for(id);
    MutexLock lock(&stripe.mu);
    const auto it = stripe.entries.find(id);
    if (it == stripe.entries.end()) return false;
    it->second.last_used = time_source_.load(std::memory_order_relaxed)();
    cursor = it->second.cursor;
    mu = it->second.mu;
    session = it->second.session;
  }
  // The slice runs outside the stripe lock: stripe siblings fetch in
  // parallel, and table sweeps never wait for a long slice. The copied
  // shared_ptrs keep the cursor alive across a concurrent unlink.
  MutexLock cursor_lock(mu.get());
  fn(*cursor, *session);
  return true;
}

std::shared_ptr<Cursor> ShardedCursorTable::FindCursor(CursorId id) const {
  const Stripe& stripe = stripe_for(id);
  MutexLock lock(&stripe.mu);
  const auto it = stripe.entries.find(id);
  if (it == stripe.entries.end()) return nullptr;
  // Deliberately no last_used refresh: cancelling must not rescue a
  // cursor from the idle sweep.
  return it->second.cursor;
}

std::shared_ptr<Session> ShardedCursorTable::Erase(CursorId id) {
  Stripe& stripe = stripe_for(id);
  MutexLock lock(&stripe.mu);
  const auto it = stripe.entries.find(id);
  if (it == stripe.entries.end()) return nullptr;
  std::shared_ptr<Session> session = std::move(it->second.session);
  stripe.entries.erase(it);
  return session;
}

size_t ShardedCursorTable::EraseOwnedBy(const Session* session) {
  size_t erased = 0;
  for (Stripe& stripe : stripes_) {
    MutexLock lock(&stripe.mu);
    for (auto it = stripe.entries.begin(); it != stripe.entries.end();) {
      if (it->second.session.get() == session) {
        it = stripe.entries.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
  }
  return erased;
}

std::vector<std::shared_ptr<Session>> ShardedCursorTable::EvictIdle(
    std::chrono::steady_clock::duration max_idle) {
  // One cutoff for the whole sweep; stripes are swept under their own
  // locks, so a concurrent WithCursor that lands after the cutoff
  // refreshes last_used and survives. A cursor unlinked mid-slice keeps
  // running on the slice's shared reference.
  const auto cutoff = time_source_.load(std::memory_order_relaxed)() - max_idle;
  std::vector<std::shared_ptr<Session>> evicted;
  for (Stripe& stripe : stripes_) {
    MutexLock lock(&stripe.mu);
    for (auto it = stripe.entries.begin(); it != stripe.entries.end();) {
      if (it->second.last_used < cutoff) {
        evicted.push_back(std::move(it->second.session));
        it = stripe.entries.erase(it);
      } else {
        ++it;
      }
    }
  }
  return evicted;
}

std::vector<CursorId> ShardedCursorTable::Ids() const {
  std::vector<CursorId> ids;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(&stripe.mu);
    for (const auto& [id, entry] : stripe.entries) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t ShardedCursorTable::NumCursors() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(&stripe.mu);
    total += stripe.entries.size();
  }
  return total;
}

}  // namespace topkjoin
