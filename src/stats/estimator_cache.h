// Single-entry cache of a CardinalityEstimator keyed on (database
// identity, version).
//
// Building an estimator samples every relation (O(total tuples)), so
// bare Engine::Execute/Explain calls that rebuilt one per query paid
// the sampling cost over and over -- and double-counted it in the
// planner metrics. Both Engine and ServingEngine now share this cache:
// one estimator per database version, rebuilt only when the data
// actually changes. Single-entry is deliberate -- a process serves one
// (or very few) databases, and Database::version() epochs guarantee a
// (pointer, version) pair can never be replayed by an unrelated
// database reusing the address, so a stale entry is unreachable rather
// than wrong.
//
// Thread-safety: all methods are safe to call concurrently. Building
// happens under the lock, so concurrent first-misses of the same
// database serialize onto one sampling pass instead of racing
// duplicates.
#ifndef TOPKJOIN_STATS_ESTIMATOR_CACHE_H_
#define TOPKJOIN_STATS_ESTIMATOR_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "src/data/database.h"
#include "src/stats/cardinality_estimator.h"

namespace topkjoin {

class EstimatorCache {
 public:
  /// The estimator for `db` at its current version; builds (and
  /// caches) one when the cached entry is missing or stale. The
  /// returned shared_ptr stays valid after the cache moves on, but the
  /// estimator borrows `db` -- do not use it past the database's
  /// lifetime or next mutation.
  std::shared_ptr<const CardinalityEstimator> For(const Database& db);

  /// Drops the entry if it belongs to `db` (e.g. before freeing the
  /// database).
  void Invalidate(const Database* db);

 private:
  std::mutex mu_;
  const Database* db_ = nullptr;
  uint64_t version_ = 0;
  std::shared_ptr<const CardinalityEstimator> estimator_;
};

}  // namespace topkjoin

#endif  // TOPKJOIN_STATS_ESTIMATOR_CACHE_H_
