// CursorTable: id -> Cursor ownership, factored out of Engine so the
// single-threaded session layer (engine.h) and the concurrent serving
// layer (serving/sharded_cursor_table.h) share one implementation.
//
// The table itself is NOT thread-safe: Engine uses one instance from a
// single thread, and the serving layer wraps one instance per lock
// stripe, holding the stripe mutex around every call.
#ifndef TOPKJOIN_ENGINE_CURSOR_TABLE_H_
#define TOPKJOIN_ENGINE_CURSOR_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/engine/cursor.h"

namespace topkjoin {

/// Handle for a session cursor. Ids are never reused within one table
/// (or one ServingEngine), so a stale id maps to "closed", not to some
/// other caller's cursor.
using CursorId = uint64_t;

class CursorTable {
 public:
  CursorTable() = default;

  /// Takes ownership and allocates the next id (starting at 1, strictly
  /// increasing).
  CursorId Insert(std::unique_ptr<Cursor> cursor);

  /// Takes ownership under a caller-allocated id -- the sharded table
  /// allocates ids globally so they stay unique across stripes. The id
  /// must not collide with a live cursor (CHECK-failed).
  void InsertWithId(CursorId id, std::unique_ptr<Cursor> cursor);

  /// The cursor behind an id; nullptr when closed/unknown. The pointer
  /// is stable until Erase.
  Cursor* Find(CursorId id);

  /// Destroys the cursor; false when the id is not present.
  bool Erase(CursorId id);

  size_t NumCursors() const { return cursors_.size(); }

  /// Live ids in increasing order (the round-robin admission order).
  std::vector<CursorId> Ids() const;

  /// Applies `fn(id, cursor)` to every live cursor in id order. `fn`
  /// must not insert into or erase from the table.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& [id, cursor] : cursors_) fn(id, cursor.get());
  }

 private:
  std::map<CursorId, std::unique_ptr<Cursor>> cursors_;
  CursorId next_id_ = 1;
};

}  // namespace topkjoin

#endif  // TOPKJOIN_ENGINE_CURSOR_TABLE_H_
