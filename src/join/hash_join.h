// Binary hash join on intermediate relations with variable bindings.
#ifndef TOPKJOIN_JOIN_HASH_JOIN_H_
#define TOPKJOIN_JOIN_HASH_JOIN_H_

#include <vector>

#include "src/data/relation.h"
#include "src/join/join_stats.h"
#include "src/query/cq.h"

namespace topkjoin {

/// A relation whose columns are bound to query variables: the shape of
/// intermediate results in binary join plans.
struct VarRelation {
  Relation rel = Relation::WithArity("vr", 0);
  std::vector<VarId> vars;  // vars[c] = variable bound to column c
};

/// Natural (equi-)join of `left` and `right` on their shared variables.
/// Output columns: left's vars then right's non-shared vars. Output
/// weight: sum of the two input weights. Uses a hash table on the
/// smaller input. Bag semantics.
VarRelation HashJoinVar(const VarRelation& left, const VarRelation& right,
                        JoinStats* stats);

/// Wraps an atom's base relation as a VarRelation (copies the data).
VarRelation AtomVarRelation(const Database& db, const ConjunctiveQuery& query,
                            size_t atom_idx);

/// Reorders a fully-bound VarRelation's columns into ascending VarId
/// order, producing the library's standard result shape (see result.h).
Relation FinalizeResult(const VarRelation& vr, const ConjunctiveQuery& query);

}  // namespace topkjoin

#endif  // TOPKJOIN_JOIN_HASH_JOIN_H_
