// E7 -- Sections 1 and 4 claim: for small k, finding the top-k lightest
// 4-cycles costs about as much as the Boolean query (O~(n^{1.5})) via
// the union-of-plans any-k, beating both the fhw=2 single-tree any-k
// (O~(n^2) preprocessing) and full WCO enumeration + sort.
//
// Expected shape for top-10: minipanda < fhw2 < enumerate+sort, with
// the gaps widening as the graph grows.
#include <algorithm>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/cycles/fourcycle.h"
#include "src/engine/engine.h"
#include "src/graph/graph_generators.h"
#include "src/join/generic_join.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace topkjoin::bench {
namespace {

constexpr size_t kTopK = 10;

Instance CycleRichGraph(size_t edges, uint64_t seed) {
  // Both endpoints Zipf-skewed: hub nodes have large in- AND out-degree,
  // so the unconditional fhw=2 bags blow up on hub-through length-2
  // paths while the heavy/light plans stay near-linear. This mirrors the
  // degree skew of the real graphs in the surveyed experiments.
  Rng rng(seed);
  const auto nodes = static_cast<Value>(std::max<size_t>(edges / 8, 16));
  ZipfSampler zipf(static_cast<uint64_t>(nodes), 0.9);
  Graph g;
  while (g.NumEdges() < edges) {
    const auto src = static_cast<Value>(zipf.Sample(rng));
    const auto dst = static_cast<Value>(zipf.Sample(rng));
    if (src == dst) continue;
    g.AddEdge(src, dst, rng.NextDouble());
  }
  Instance t;
  const RelationId e = t.db.Add(g.ToRelation());
  t.query = FourCycleQuery(e);
  return t;
}

void BM_MiniPandaAnyK(benchmark::State& state) {
  const auto m = static_cast<size_t>(state.range(0));
  Instance t = CycleRichGraph(m, 23);
  double kth = 0.0;
  for (auto _ : state) {
    auto it = MakeFourCycleAnyK(t.db, t.query, AnyKAlgorithm::kRec, nullptr);
    for (size_t i = 0; i < kTopK; ++i) {
      const auto r = it->Next();
      if (!r.has_value()) break;
      kth = r->cost;
    }
  }
  state.counters["edges"] = static_cast<double>(m);
  state.counters["kth_cost"] = kth;
}

// Same mini-PANDA routing, but dispatched through Engine::Execute: the
// planner detects the 4-cycle shape itself. Overhead vs BM_MiniPandaAnyK
// is the engine's planning cost (see also bench_e10_engine).
void BM_EngineFourCycle(benchmark::State& state) {
  const auto m = static_cast<size_t>(state.range(0));
  Instance t = CycleRichGraph(m, 23);
  Engine engine;
  ExecutionOptions opts;
  opts.k = kTopK;
  opts.force_algorithm = AnyKAlgorithm::kRec;
  double kth = 0.0;
  for (auto _ : state) {
    auto result = engine.Execute(t.db, t.query, {}, opts);
    if (!result.ok()) {
      state.SkipWithError(result.status().message().c_str());
      break;
    }
    for (size_t i = 0; i < kTopK; ++i) {
      const auto r = result.value().stream->Next();
      if (!r.has_value()) break;
      kth = r->cost;
    }
  }
  state.counters["edges"] = static_cast<double>(m);
  state.counters["kth_cost"] = kth;
}

void BM_Fhw2AnyK(benchmark::State& state) {
  const auto m = static_cast<size_t>(state.range(0));
  Instance t = CycleRichGraph(m, 23);
  double kth = 0.0;
  for (auto _ : state) {
    JoinStats stats;
    const DecomposedQuery dq = FourCycleFhw2(t.db, t.query, &stats);
    auto it = MakeAnyK(dq.db, dq.query, AnyKAlgorithm::kRec);
    for (size_t i = 0; i < kTopK; ++i) {
      const auto r = it->Next();
      if (!r.has_value()) break;
      kth = r->cost;
    }
  }
  state.counters["edges"] = static_cast<double>(m);
  state.counters["kth_cost"] = kth;
}

void BM_EnumerateAndSort(benchmark::State& state) {
  const auto m = static_cast<size_t>(state.range(0));
  Instance t = CycleRichGraph(m, 23);
  double kth = 0.0;
  for (auto _ : state) {
    JoinStats stats;
    const Relation all = GenericJoinAll(t.db, t.query, &stats);
    std::vector<double> costs;
    costs.reserve(all.NumTuples());
    for (RowId r = 0; r < all.NumTuples(); ++r) {
      costs.push_back(all.TupleWeight(r));
    }
    const size_t k = std::min<size_t>(kTopK, costs.size());
    std::partial_sort(costs.begin(),
                      costs.begin() + static_cast<ptrdiff_t>(k), costs.end());
    kth = k > 0 ? costs[k - 1] : 0.0;
  }
  state.counters["edges"] = static_cast<double>(m);
  state.counters["kth_cost"] = kth;
}

BENCHMARK(BM_MiniPandaAnyK)->Arg(2000)->Arg(8000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineFourCycle)->Arg(2000)->Arg(8000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fhw2AnyK)->Arg(2000)->Arg(8000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);
// The full-enumeration baseline is two orders of magnitude slower on the
// skewed graphs; keep its sweep short so the bench binary stays usable.
BENCHMARK(BM_EnumerateAndSort)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace topkjoin::bench

BENCHMARK_MAIN();
