#include "src/stats/estimator_cache.h"

#include "src/obs/metrics.h"

namespace topkjoin {

std::shared_ptr<const CardinalityEstimator> EstimatorCache::For(
    const Database& db) {
  std::lock_guard<std::mutex> lock(mu_);
  if (db_ == &db && version_ == db.version()) {
    if constexpr (kMetricsEnabled) {
      MetricsRegistry::Global()
          .GetCounter("stats.estimator_cache_hits")
          ->Increment();
    }
    return estimator_;
  }
  if constexpr (kMetricsEnabled) {
    MetricsRegistry::Global()
        .GetCounter("stats.estimator_cache_misses")
        ->Increment();
  }
  auto built = std::make_shared<const CardinalityEstimator>(db);
  db_ = &db;
  version_ = db.version();
  estimator_ = built;
  return built;
}

void EstimatorCache::Invalidate(const Database* db) {
  std::lock_guard<std::mutex> lock(mu_);
  if (db_ == db) {
    db_ = nullptr;
    version_ = 0;
    estimator_.reset();
  }
}

}  // namespace topkjoin
