// Semi-join reductions and the Yannakakis full reducer.
//
// After a full-reducer pass along a join tree (Bernstein-Chiu semijoin
// program), the database is globally consistent: every remaining tuple
// participates in at least one join result (Section 3 of the paper).
// This is the property that gives Yannakakis its O~(n + r) bound and
// gives the any-k dynamic programs dangling-free state spaces.
#ifndef TOPKJOIN_JOIN_SEMIJOIN_H_
#define TOPKJOIN_JOIN_SEMIJOIN_H_

#include <vector>

#include "src/data/database.h"
#include "src/join/join_stats.h"
#include "src/query/cq.h"
#include "src/query/hypergraph.h"

namespace topkjoin {

/// The rows a semijoin of `target` by `filter` would keep (true =
/// survives), without mutating `target`. Factored out so callers that
/// maintain row-aligned side data (e.g. the full reducer's provenance)
/// can apply one mask to everything.
std::vector<bool> SemijoinKeepMask(const Relation& target,
                                   const std::vector<size_t>& target_cols,
                                   const Relation& filter,
                                   const std::vector<size_t>& filter_cols,
                                   JoinStats* stats);

/// target := target semijoin filter, matching target columns
/// `target_cols` against filter columns `filter_cols`. Keeps only target
/// tuples whose key appears in the filter.
void SemijoinReduce(Relation* target, const std::vector<size_t>& target_cols,
                    const Relation& filter,
                    const std::vector<size_t>& filter_cols, JoinStats* stats);

/// A database restricted to one (possibly reduced) relation copy per
/// query atom, so self-joins can be reduced per-atom independently.
struct ReducedInstance {
  /// One relation copy per atom, index-aligned with query.atoms().
  std::vector<Relation> atom_relations;
  /// Row provenance per atom: provenance[a][r] is the RowId the reduced
  /// relation's row r had in the original db relation. Lets consumers
  /// re-attach per-tuple side data (e.g. bag WeightMatrix rows) after
  /// reduction shuffled the row ids.
  std::vector<std::vector<RowId>> provenance;
};

/// Copies each atom's relation out of `db` (no reduction yet).
ReducedInstance MakeInstance(const Database& db,
                             const ConjunctiveQuery& query);

/// Runs the full reducer over the join tree: a bottom-up pass (each
/// parent semijoined by each child) followed by a top-down pass (each
/// child semijoined by its parent). After this, the instance is globally
/// consistent w.r.t. the acyclic query.
void FullReducer(const ConjunctiveQuery& query, const JoinTree& tree,
                 ReducedInstance* instance, JoinStats* stats);

}  // namespace topkjoin

#endif  // TOPKJOIN_JOIN_SEMIJOIN_H_
